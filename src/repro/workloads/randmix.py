"""Seeded random workload generators: stress, ablation and property-test fuel.

* :func:`random_mix` -- straight-line programs with a parameterised
  instruction mix over private and shared regions.  With
  ``shared_words=0`` the final state is interleaving-independent, so
  property tests compare it word-for-word against the functional
  reference interpreter.
* :func:`false_sharing` -- every thread updates its *own* word, but all
  the words live in one cache block: maximal coherence ping-pong with
  zero true sharing.  The ablation workload for block- vs
  word-granularity violation detection (E4).
* :func:`fence_density_sweep_program` -- fixed work with a controllable
  fence rate, used by the sensitivity experiments.
* :func:`random_litmus_ops` / :func:`compile_litmus_ops` -- the
  consistency fuzzer's program IR: small random multi-threaded litmus
  tests over a handful of shared words, every written value globally
  unique so the checker can reconstruct reads-from edges exactly.
"""

from __future__ import annotations

import random
from typing import List, NamedTuple, Optional, Sequence

from repro.isa.instructions import FenceKind
from repro.isa.program import Assembler, Program
from repro.workloads.base import Layout, Workload

R_ONE = 24
R_ADDR = 1
R_VAL = 2
R_SUM = 3
R_LOOP = 5


def random_mix(
    n_threads: int,
    n_instructions: int = 200,
    seed: int = 1,
    private_words: int = 32,
    shared_words: int = 8,
    pct_load: float = 0.35,
    pct_store: float = 0.30,
    pct_atomic: float = 0.05,
    pct_fence: float = 0.05,
) -> Workload:
    """Straight-line random programs with the given instruction mix.

    The remaining probability mass is EXEC compute.  Loads accumulate
    into ``r3`` (a checksum the tests can compare across engines);
    stores write a per-thread rolling value.  ``shared_words=0`` makes
    the outcome deterministic regardless of interleaving.
    """
    if pct_load + pct_store + pct_atomic + pct_fence > 1.0:
        raise ValueError("instruction mix probabilities exceed 1.0")
    layout = Layout()
    shared_base = layout.array(shared_words) if shared_words else None
    private_bases = [layout.array(private_words) for _ in range(n_threads)]

    rng = random.Random(seed)
    programs: List[Program] = []
    for tid in range(n_threads):
        asm = Assembler(f"randmix.t{tid}")
        asm.li(R_ONE, 1)
        asm.li(R_SUM, 0)
        rolling = tid + 1
        for _ in range(n_instructions):
            roll = rng.random()
            use_shared = shared_words > 0 and rng.random() < 0.3
            if use_shared:
                addr = shared_base + 8 * rng.randrange(shared_words)
            else:
                addr = private_bases[tid] + 8 * rng.randrange(private_words)
            asm.li(R_ADDR, addr)
            if roll < pct_load:
                asm.load(R_VAL, base=R_ADDR)
                asm.add(R_SUM, R_SUM, R_VAL)
            elif roll < pct_load + pct_store:
                rolling = (rolling * 7 + 3) % 1000
                asm.li(R_VAL, rolling)
                asm.store(R_VAL, base=R_ADDR)
            elif roll < pct_load + pct_store + pct_atomic:
                asm.fetch_add(R_VAL, base=R_ADDR, addend=R_ONE)
            elif roll < pct_load + pct_store + pct_atomic + pct_fence:
                asm.fence(rng.choice(list(FenceKind)))
            else:
                asm.exec_(rng.randrange(1, 6))
        asm.halt()
        programs.append(asm.build())

    return Workload(
        name="random-mix",
        programs=programs,
        description=(f"{n_threads} threads x {n_instructions} random ops "
                     f"(seed={seed}, shared={shared_words}w)"),
    )


# --------------------------------------------------------------------------
# Consistency-fuzzer litmus IR
#
# The fuzzer (repro.verification.fuzz) wants programs it can *shrink*:
# an op-level IR that survives dropping arbitrary ops or whole threads
# and recompiles to a runnable Program.  Compilation is deliberately
# minimal -- absolute addressing through the hardwired-zero register --
# so the instruction count of a shrunk reproducer stays readable.

#: Base of the shared region litmus ops target; words are spaced one
#: cache block apart so block-granularity effects never alias locations.
LITMUS_BASE = 0x1000
LITMUS_STRIDE = 64


class MemOp(NamedTuple):
    """One litmus-IR operation of a single thread.

    ``kind`` is one of ``"load"``, ``"store"``, ``"swap"`` (an atomic
    exchange: the only RMW whose written value the generator fully
    controls, which unique-value provenance needs), ``"fence"`` or
    ``"delay"`` (EXEC padding used for timing skew).
    """

    kind: str
    addr: int = 0               #: absolute word address (memory ops)
    value: int = 0              #: written value (store/swap)
    fence: FenceKind = FenceKind.FULL
    cycles: int = 1             #: padding length (delay)


def litmus_addr(word: int) -> int:
    """Absolute address of shared word ``word`` in the litmus region."""
    return LITMUS_BASE + LITMUS_STRIDE * word


def random_litmus_ops(
    n_threads: int,
    ops_per_thread: int,
    seed: int,
    shared_words: int = 3,
    pct_store: float = 0.4,
    pct_atomic: float = 0.1,
    pct_fence: float = 0.1,
    pct_delay: float = 0.15,
    max_delay: int = 30,
) -> List[List[MemOp]]:
    """Seeded random litmus program: one op list per thread.

    Every written value is globally unique (counting up from 1, never
    colliding with the initial 0), so a recorded execution's reads-from
    relation is recoverable by value -- the property the per-model
    ordering checker and the coherence checker's non-vacuousness
    assertion (``locations_skipped == 0``) rely on.  The remaining
    probability mass after stores/atomics/fences/delays is loads.
    """
    rng = random.Random(seed)
    next_value = 1
    threads: List[List[MemOp]] = []
    for _ in range(n_threads):
        ops: List[MemOp] = []
        for _ in range(ops_per_thread):
            roll = rng.random()
            addr = litmus_addr(rng.randrange(shared_words))
            if roll < pct_store:
                ops.append(MemOp("store", addr=addr, value=next_value))
                next_value += 1
            elif roll < pct_store + pct_atomic:
                ops.append(MemOp("swap", addr=addr, value=next_value))
                next_value += 1
            elif roll < pct_store + pct_atomic + pct_fence:
                ops.append(MemOp("fence", fence=rng.choice(list(FenceKind))))
            elif roll < pct_store + pct_atomic + pct_fence + pct_delay:
                ops.append(MemOp("delay", cycles=rng.randrange(1, max_delay)))
            else:
                ops.append(MemOp("load", addr=addr))
        threads.append(ops)
    return threads


def compile_litmus_ops(
    threads: Sequence[Sequence[MemOp]],
    skews: Optional[Sequence[int]] = None,
    name: str = "fuzz",
) -> List[Program]:
    """Compile litmus IR to runnable programs.

    ``skews`` prepends per-thread EXEC padding, the sweep's lever for
    steering which interleavings the simulator explores.  Addressing is
    absolute (base = hardwired-zero r0, address in the immediate), so a
    load costs one instruction and a store/swap two -- shrunk
    reproducers stay close to hand-written litmus tests.
    """
    programs = []
    for tid, ops in enumerate(threads):
        asm = Assembler(f"{name}.t{tid}")
        if skews and skews[tid]:
            asm.exec_(skews[tid])
        for op in ops:
            if op.kind == "load":
                asm.load(R_VAL, base=0, offset=op.addr)
            elif op.kind == "store":
                asm.li(R_VAL, op.value)
                asm.store(R_VAL, base=0, offset=op.addr)
            elif op.kind == "swap":
                asm.li(R_VAL, op.value)
                asm.swap(R_SUM, base=0, value=R_VAL, offset=op.addr)
            elif op.kind == "fence":
                asm.fence(op.fence)
            elif op.kind == "delay":
                asm.exec_(op.cycles)
            else:
                raise ValueError(f"unknown litmus op kind {op.kind!r}")
        asm.halt()
        programs.append(asm.build())
    return programs


def litmus_instruction_count(threads: Sequence[Sequence[MemOp]]) -> int:
    """Compiled instruction count (HALTs and skew padding excluded)."""
    cost = {"load": 1, "store": 2, "swap": 2, "fence": 1, "delay": 1}
    return sum(cost[op.kind] for ops in threads for op in ops)


# --------------------------------------------------------------------------
# Fence-placement hooks on the litmus IR
#
# The fence synthesizer (repro.verification.synth) searches over *where*
# to put fences, so placement is a first-class IR edit: a candidate
# point is a gap between two ops of one thread, and inserting a fence
# is a pure IR -> IR transform that recompiles like any other litmus
# program.  Keeping these here (next to MemOp) rather than in the
# synthesizer makes placements printable/reproducible artifacts of the
# same IR the shrinker and reproducer emitter already speak.

#: Litmus-IR op kinds that touch memory; only gaps separating two of
#: these are candidate fence points (a fence next to pure delay padding
#: orders nothing).
_MEMORY_KINDS = ("load", "store", "swap")


class FencePlacement(NamedTuple):
    """One synthesized fence: ``kind`` inserted before op ``gap`` of
    ``thread`` (gap ``g`` is the point between ops ``g-1`` and ``g``)."""

    thread: int
    gap: int
    kind: FenceKind

    def describe(self) -> str:
        return f"t{self.thread}@{self.gap}:{self.kind.value}"


def fence_gaps(threads: Sequence[Sequence[MemOp]]) -> List[tuple]:
    """All candidate fence points of a litmus program.

    A gap qualifies when at least one memory op (load/store/swap) sits
    on each side of it within the thread: a fence anywhere else orders
    nothing the checker can see.  Returned as ``(thread, gap)`` pairs in
    deterministic (thread-major, ascending-gap) order.
    """
    points: List[tuple] = []
    for tid, ops in enumerate(threads):
        mem = [i for i, op in enumerate(ops) if op.kind in _MEMORY_KINDS]
        if len(mem) < 2:
            continue
        for gap in range(mem[0] + 1, mem[-1] + 1):
            points.append((tid, gap))
    return points


def insert_fences(threads: Sequence[Sequence[MemOp]],
                  placements: Sequence[FencePlacement]):
    """The litmus program with every placement's fence op inserted.

    Pure transform: returns a new tuple-of-tuples IR, inserting each
    fence *before* the op its gap names (descending-gap order per
    thread keeps indices stable).  Placements must be in range.
    """
    new_threads = [list(ops) for ops in threads]
    for p in sorted(placements, key=lambda p: (p.thread, -p.gap)):
        ops = new_threads[p.thread]
        if not 0 <= p.gap <= len(ops):
            raise ValueError(f"fence gap out of range: {p}")
        ops.insert(p.gap, MemOp("fence", fence=p.kind))
    return tuple(tuple(ops) for ops in new_threads)


def false_sharing(
    n_threads: int,
    iterations: int = 40,
    fence_every: int = 4,
) -> Workload:
    """Per-thread counters packed into one cache block.

    No word is ever shared, yet under block-granularity coherence every
    update invalidates everyone -- and under block-granularity
    speculation every invalidation aborts whoever was speculating.
    A FULL fence every ``fence_every`` iterations supplies the
    speculation triggers.
    """
    if n_threads > 8:
        raise ValueError("one 64-byte block holds at most 8 per-thread words")
    layout = Layout()
    block_base = layout.array(8)
    counters = [block_base + 8 * i for i in range(n_threads)]

    programs = []
    for tid in range(n_threads):
        asm = Assembler(f"false_sharing.t{tid}")
        asm.li(R_ONE, 1)
        asm.li(R_ADDR, counters[tid])
        for i in range(iterations):
            asm.load(R_VAL, base=R_ADDR)
            asm.add(R_VAL, R_VAL, R_ONE)
            asm.store(R_VAL, base=R_ADDR)
            if fence_every and i % fence_every == fence_every - 1:
                asm.fence(FenceKind.FULL)
        asm.halt()
        programs.append(asm.build())

    def validate(result) -> None:
        for tid in range(n_threads):
            value = result.read_word(counters[tid])
            assert value == iterations, (
                f"thread {tid}: counter {value} != {iterations} "
                "(a rollback lost or replayed an update)"
            )

    return Workload(
        name="false-sharing",
        programs=programs,
        description=f"{n_threads} threads x {iterations} same-block updates",
        validate=validate,
    )


def read_side_false_sharing(
    n_readers: int = 3,
    iterations: int = 40,
) -> Workload:
    """One writer, many readers, all on different words of one block.

    The writer updates word 0; each reader speculatively *reads* its own
    word (its speculation windows come from fenced private stores).  The
    readers' SR bits land on the shared block, so every writer update
    aborts them under BLOCK granularity -- but never under the WORD
    oracle, because the written word provably misses their read sets.
    This is the workload that separates the two modes in E4.
    """
    n_threads = n_readers + 1
    if n_threads > 8:
        raise ValueError("one 64-byte block holds at most 8 words")
    layout = Layout()
    block_base = layout.array(8)
    # Each reader stores into a fresh, never-touched block every
    # iteration: the cold DRAM drain keeps its speculation window open
    # long enough for the writer's invalidations to land inside it.
    cold_regions = [layout.array(8 * (iterations + 1)) for _ in range(n_readers)]

    programs = []
    writer = Assembler("rsfs.writer")
    writer.li(R_ONE, 1)
    writer.li(R_ADDR, block_base)
    for i in range(iterations):
        writer.load(R_VAL, base=R_ADDR)
        writer.add(R_VAL, R_VAL, R_ONE)
        writer.store(R_VAL, base=R_ADDR)
        writer.exec_(5)
    writer.halt()
    programs.append(writer.build())

    for reader in range(n_readers):
        word_addr = block_base + 8 * (reader + 1)
        asm = Assembler(f"rsfs.reader{reader}")
        asm.li(R_ONE, 1)
        asm.li(R_ADDR, word_addr)
        asm.li(4, cold_regions[reader])
        asm.li(R_SUM, 0)
        for i in range(iterations):
            # A slow (cold-miss) store + FULL fence opens a long
            # speculation window...
            asm.store(R_ONE, base=4)
            asm.addi(4, 4, 64)
            asm.fence(FenceKind.FULL)
            # ...inside which this read of the shared block lands (SR).
            asm.load(R_VAL, base=R_ADDR)
            asm.add(R_SUM, R_SUM, R_VAL)
        asm.halt()
        programs.append(asm.build())

    def validate(result) -> None:
        total = result.read_word(block_base)
        assert total == iterations, f"writer count {total} != {iterations}"
        for reader in range(n_readers):
            # Readers only ever see the initial zero in their own word.
            assert result.core_reg(reader + 1, R_SUM) == 0

    return Workload(
        name="read-side-false-sharing",
        programs=programs,
        description=f"1 writer + {n_readers} readers on one block",
        validate=validate,
    )


def fence_density_sweep_program(
    n_threads: int,
    work_units: int = 60,
    ops_per_fence: int = 4,
) -> Workload:
    """Fixed private work with one FULL fence every ``ops_per_fence``
    store/compute units: the knob for fence-frequency sensitivity.

    Each unit stores into a fresh (cold) block, so an eager fence waits
    a full DRAM round trip -- the store-miss-behind-a-fence pattern the
    paper's ordering stalls come from.
    """
    layout = Layout()
    # One block per work unit: every store is a cold miss.
    private_bases = [layout.array(8 * work_units) for _ in range(n_threads)]

    programs = []
    for tid in range(n_threads):
        asm = Assembler(f"fence_density.t{tid}")
        asm.li(R_ONE, 1)
        for unit in range(work_units):
            asm.li(R_ADDR, private_bases[tid] + 64 * unit)
            asm.li(R_VAL, unit + 1)
            asm.store(R_VAL, base=R_ADDR)
            asm.exec_(2)
            if ops_per_fence and unit % ops_per_fence == ops_per_fence - 1:
                asm.fence(FenceKind.FULL)
        asm.halt()
        programs.append(asm.build())

    def validate(result) -> None:
        for tid in range(n_threads):
            for unit in range(work_units):
                value = result.read_word(private_bases[tid] + 64 * unit)
                assert value == unit + 1

    return Workload(
        name="fence-density",
        programs=programs,
        description=(f"{n_threads} threads, fence every {ops_per_fence} "
                     "store units"),
        validate=validate,
    )

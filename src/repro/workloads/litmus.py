"""Memory-consistency litmus tests with per-model allowed-outcome sets.

Each :class:`LitmusTest` builds loop-free two-thread programs with an
optional per-thread timing skew (EXEC padding) so the harness can
sample many relative timings, an ``observe`` function extracting the
interesting registers, and the set of outcomes each consistency model
permits.  The speculation-invisibility tests assert that every outcome
an InvisiFence machine produces is allowed by its *base* model.

Note on our machine's strength: the core is in-order with blocking
loads, so load-load reordering never occurs even under RMO.  Observed
outcome sets are therefore asserted to be *subsets* of the allowed
sets (the machine may be stronger than the model, never weaker).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Tuple

from repro.isa.instructions import FenceKind
from repro.isa.program import Assembler, Program
from repro.sim.config import ConsistencyModel
from repro.workloads.base import Layout

Outcome = Tuple[int, ...]

#: Register each litmus thread leaves its observation in.
R_OBS = 10
R_OBS2 = 11
R_ADDR_X = 1
R_ADDR_Y = 2
R_ONE = 24


@dataclass(frozen=True)
class LitmusTest:
    """One litmus test: program factory + observation + allowed outcomes."""

    name: str
    #: build(skews) -> programs; skews is one EXEC-padding count per thread.
    build: Callable[[List[int]], List[Program]]
    n_threads: int
    #: observe(result) -> outcome tuple
    observe: Callable[..., Outcome]
    #: model -> the set of outcomes that model permits
    allowed: Dict[ConsistencyModel, FrozenSet[Outcome]]


def _skew(asm: Assembler, cycles: int) -> None:
    if cycles > 0:
        asm.exec_(cycles)


def store_buffering(fenced: bool, padded: bool = False) -> LitmusTest:
    """SB / Dekker: both threads store then load the other's variable.

    (r0_obs, r1_obs) == (0, 0) requires StoreLoad reordering: forbidden
    under SC, allowed under TSO/RMO -- unless a FULL fence separates
    the store from the load.

    ``padded=True`` enqueues a slow (cold-miss) store ahead of the
    flag store in each thread.  On this machine drains start eagerly in
    program order, so the *unpadded* test never actually exhibits
    (0, 0); the padding delays the flag store's drain behind a DRAM
    round trip, letting the load overtake it and making the relaxation
    observable (still forbidden once fenced).
    """
    layout = Layout()
    x_addr, y_addr = layout.word(), layout.word()
    pad0, pad1 = layout.word(), layout.word()

    def build(skews: List[int]) -> List[Program]:
        t0 = Assembler("sb.t0")
        t0.li(R_ADDR_X, x_addr).li(R_ADDR_Y, y_addr).li(R_ONE, 1)
        _skew(t0, skews[0])
        if padded:
            t0.li(3, pad0)
            t0.store(R_ONE, base=3)
        t0.store(R_ONE, base=R_ADDR_X)
        if fenced:
            t0.fence(FenceKind.FULL)
        t0.load(R_OBS, base=R_ADDR_Y)
        t0.halt()

        t1 = Assembler("sb.t1")
        t1.li(R_ADDR_X, x_addr).li(R_ADDR_Y, y_addr).li(R_ONE, 1)
        _skew(t1, skews[1])
        if padded:
            t1.li(3, pad1)
            t1.store(R_ONE, base=3)
        t1.store(R_ONE, base=R_ADDR_Y)
        if fenced:
            t1.fence(FenceKind.FULL)
        t1.load(R_OBS, base=R_ADDR_X)
        t1.halt()
        return [t0.build(), t1.build()]

    def observe(result) -> Outcome:
        return (result.core_reg(0, R_OBS), result.core_reg(1, R_OBS))

    sc_allowed = frozenset({(0, 1), (1, 0), (1, 1)})
    relaxed_allowed = sc_allowed if fenced else sc_allowed | {(0, 0)}
    suffix = ("-fenced" if fenced else "") + ("-padded" if padded else "")
    return LitmusTest(
        name=f"store-buffering{suffix}",
        build=build,
        n_threads=2,
        observe=observe,
        allowed={
            ConsistencyModel.SC: sc_allowed,
            ConsistencyModel.TSO: relaxed_allowed,
            ConsistencyModel.RMO: relaxed_allowed,
        },
    )


def message_passing(fenced: bool) -> LitmusTest:
    """MP without spinning: t0 publishes data then flag; t1 reads flag
    then data.  (flag, data) == (1, 0) requires store-store or
    load-load reordering; forbidden under SC and TSO, allowed under
    architectural RMO without fences.  (Our in-order machine with a
    FIFO store buffer never produces it; subset assertion applies.)
    """
    layout = Layout()
    data_addr, flag_addr = layout.word(), layout.word()

    def build(skews: List[int]) -> List[Program]:
        t0 = Assembler("mp.t0")
        t0.li(R_ADDR_X, data_addr).li(R_ADDR_Y, flag_addr).li(R_ONE, 1)
        _skew(t0, skews[0])
        t0.li(3, 42)
        t0.store(3, base=R_ADDR_X)
        if fenced:
            t0.fence(FenceKind.STORE_STORE)
        t0.store(R_ONE, base=R_ADDR_Y)
        t0.halt()

        t1 = Assembler("mp.t1")
        t1.li(R_ADDR_X, data_addr).li(R_ADDR_Y, flag_addr)
        _skew(t1, skews[1])
        t1.load(R_OBS, base=R_ADDR_Y)   # flag
        if fenced:
            t1.fence(FenceKind.LOAD_LOAD)
        t1.load(R_OBS2, base=R_ADDR_X)  # data
        t1.halt()
        return [t0.build(), t1.build()]

    def observe(result) -> Outcome:
        return (result.core_reg(1, R_OBS), result.core_reg(1, R_OBS2))

    strong = frozenset({(0, 0), (0, 42), (1, 42)})
    relaxed = strong if fenced else strong | {(1, 0)}
    return LitmusTest(
        name=f"message-passing{'-fenced' if fenced else ''}",
        build=build,
        n_threads=2,
        observe=observe,
        allowed={
            ConsistencyModel.SC: strong,
            ConsistencyModel.TSO: strong,
            ConsistencyModel.RMO: relaxed,
        },
    )


def coherence_read_read() -> LitmusTest:
    """CoRR: two loads of one location must not see values go backwards.

    (1, 0) violates cache coherence itself and is forbidden under every
    model -- a safety net over the whole protocol + speculation stack.
    """
    layout = Layout()
    x_addr = layout.word()

    def build(skews: List[int]) -> List[Program]:
        t0 = Assembler("corr.t0")
        t0.li(R_ADDR_X, x_addr).li(R_ONE, 1)
        _skew(t0, skews[0])
        t0.store(R_ONE, base=R_ADDR_X)
        t0.halt()

        t1 = Assembler("corr.t1")
        t1.li(R_ADDR_X, x_addr)
        _skew(t1, skews[1])
        t1.load(R_OBS, base=R_ADDR_X)
        t1.load(R_OBS2, base=R_ADDR_X)
        t1.halt()
        return [t0.build(), t1.build()]

    def observe(result) -> Outcome:
        return (result.core_reg(1, R_OBS), result.core_reg(1, R_OBS2))

    allowed = frozenset({(0, 0), (0, 1), (1, 1)})
    return LitmusTest(
        name="coherence-read-read",
        build=build,
        n_threads=2,
        observe=observe,
        allowed={model: allowed for model in ConsistencyModel},
    )


def atomicity() -> LitmusTest:
    """Both threads fetch-add the same word: the atomics must never
    collide (final value 2, and the two loaded values differ)."""
    layout = Layout()
    x_addr = layout.word()

    def build(skews: List[int]) -> List[Program]:
        progs = []
        for tid in range(2):
            asm = Assembler(f"atomicity.t{tid}")
            asm.li(R_ADDR_X, x_addr).li(R_ONE, 1)
            _skew(asm, skews[tid])
            asm.fetch_add(R_OBS, base=R_ADDR_X, addend=R_ONE)
            asm.halt()
            progs.append(asm.build())
        return progs

    def observe(result) -> Outcome:
        return (result.core_reg(0, R_OBS), result.core_reg(1, R_OBS),
                result.read_word(x_addr))

    allowed = frozenset({(0, 1, 2), (1, 0, 2)})
    return LitmusTest(
        name="atomicity",
        build=build,
        n_threads=2,
        observe=observe,
        allowed={model: allowed for model in ConsistencyModel},
    )


def all_litmus_tests() -> List[LitmusTest]:
    """The full litmus battery."""
    return [
        store_buffering(fenced=False),
        store_buffering(fenced=True),
        store_buffering(fenced=False, padded=True),
        store_buffering(fenced=True, padded=True),
        message_passing(fenced=False),
        message_passing(fenced=True),
        coherence_read_read(),
        atomicity(),
    ]

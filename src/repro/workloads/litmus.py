"""Memory-consistency litmus tests with per-model allowed-outcome sets.

Each :class:`LitmusTest` builds loop-free two-thread programs with an
optional per-thread timing skew (EXEC padding) so the harness can
sample many relative timings, an ``observe`` function extracting the
interesting registers, and the set of outcomes each consistency model
permits.  The speculation-invisibility tests assert that every outcome
an InvisiFence machine produces is allowed by its *base* model.

Note on our machine's strength: the core is in-order with blocking
loads, so load-load reordering never occurs even under RMO.  Observed
outcome sets are therefore asserted to be *subsets* of the allowed
sets (the machine may be stronger than the model, never weaker).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Tuple

from repro.isa.instructions import FenceKind
from repro.isa.program import Assembler, Program
from repro.sim.config import ConsistencyModel
from repro.workloads.base import Layout

Outcome = Tuple[int, ...]

#: Register each litmus thread leaves its observation in.
R_OBS = 10
R_OBS2 = 11
R_ADDR_X = 1
R_ADDR_Y = 2
R_ONE = 24


@dataclass(frozen=True)
class LitmusTest:
    """One litmus test: program factory + observation + allowed outcomes."""

    name: str
    #: build(skews) -> programs; skews is one EXEC-padding count per thread.
    build: Callable[[List[int]], List[Program]]
    n_threads: int
    #: observe(result) -> outcome tuple
    observe: Callable[..., Outcome]
    #: model -> the set of outcomes that model permits
    allowed: Dict[ConsistencyModel, FrozenSet[Outcome]]


def _skew(asm: Assembler, cycles: int) -> None:
    if cycles > 0:
        asm.exec_(cycles)


def store_buffering(fenced: bool, padded: bool = False) -> LitmusTest:
    """SB / Dekker: both threads store then load the other's variable.

    (r0_obs, r1_obs) == (0, 0) requires StoreLoad reordering: forbidden
    under SC, allowed under TSO/RMO -- unless a FULL fence separates
    the store from the load.

    ``padded=True`` enqueues a slow (cold-miss) store ahead of the
    flag store in each thread.  On this machine drains start eagerly in
    program order, so the *unpadded* test never actually exhibits
    (0, 0); the padding delays the flag store's drain behind a DRAM
    round trip, letting the load overtake it and making the relaxation
    observable (still forbidden once fenced).
    """
    layout = Layout()
    x_addr, y_addr = layout.word(), layout.word()
    pad0, pad1 = layout.word(), layout.word()

    def build(skews: List[int]) -> List[Program]:
        t0 = Assembler("sb.t0")
        t0.li(R_ADDR_X, x_addr).li(R_ADDR_Y, y_addr).li(R_ONE, 1)
        _skew(t0, skews[0])
        if padded:
            t0.li(3, pad0)
            t0.store(R_ONE, base=3)
        t0.store(R_ONE, base=R_ADDR_X)
        if fenced:
            t0.fence(FenceKind.FULL)
        t0.load(R_OBS, base=R_ADDR_Y)
        t0.halt()

        t1 = Assembler("sb.t1")
        t1.li(R_ADDR_X, x_addr).li(R_ADDR_Y, y_addr).li(R_ONE, 1)
        _skew(t1, skews[1])
        if padded:
            t1.li(3, pad1)
            t1.store(R_ONE, base=3)
        t1.store(R_ONE, base=R_ADDR_Y)
        if fenced:
            t1.fence(FenceKind.FULL)
        t1.load(R_OBS, base=R_ADDR_X)
        t1.halt()
        return [t0.build(), t1.build()]

    def observe(result) -> Outcome:
        return (result.core_reg(0, R_OBS), result.core_reg(1, R_OBS))

    sc_allowed = frozenset({(0, 1), (1, 0), (1, 1)})
    relaxed_allowed = sc_allowed if fenced else sc_allowed | {(0, 0)}
    suffix = ("-fenced" if fenced else "") + ("-padded" if padded else "")
    return LitmusTest(
        name=f"store-buffering{suffix}",
        build=build,
        n_threads=2,
        observe=observe,
        allowed={
            ConsistencyModel.SC: sc_allowed,
            ConsistencyModel.TSO: relaxed_allowed,
            ConsistencyModel.RMO: relaxed_allowed,
        },
    )


def message_passing(fenced: bool) -> LitmusTest:
    """MP without spinning: t0 publishes data then flag; t1 reads flag
    then data.  (flag, data) == (1, 0) requires store-store or
    load-load reordering; forbidden under SC and TSO, allowed under
    architectural RMO without fences.  (Our in-order machine with a
    FIFO store buffer never produces it; subset assertion applies.)
    """
    layout = Layout()
    data_addr, flag_addr = layout.word(), layout.word()

    def build(skews: List[int]) -> List[Program]:
        t0 = Assembler("mp.t0")
        t0.li(R_ADDR_X, data_addr).li(R_ADDR_Y, flag_addr).li(R_ONE, 1)
        _skew(t0, skews[0])
        t0.li(3, 42)
        t0.store(3, base=R_ADDR_X)
        if fenced:
            t0.fence(FenceKind.STORE_STORE)
        t0.store(R_ONE, base=R_ADDR_Y)
        t0.halt()

        t1 = Assembler("mp.t1")
        t1.li(R_ADDR_X, data_addr).li(R_ADDR_Y, flag_addr)
        _skew(t1, skews[1])
        t1.load(R_OBS, base=R_ADDR_Y)   # flag
        if fenced:
            t1.fence(FenceKind.LOAD_LOAD)
        t1.load(R_OBS2, base=R_ADDR_X)  # data
        t1.halt()
        return [t0.build(), t1.build()]

    def observe(result) -> Outcome:
        return (result.core_reg(1, R_OBS), result.core_reg(1, R_OBS2))

    strong = frozenset({(0, 0), (0, 42), (1, 42)})
    relaxed = strong if fenced else strong | {(1, 0)}
    return LitmusTest(
        name=f"message-passing{'-fenced' if fenced else ''}",
        build=build,
        n_threads=2,
        observe=observe,
        allowed={
            ConsistencyModel.SC: strong,
            ConsistencyModel.TSO: strong,
            ConsistencyModel.RMO: relaxed,
        },
    )


def coherence_read_read() -> LitmusTest:
    """CoRR: two loads of one location must not see values go backwards.

    (1, 0) violates cache coherence itself and is forbidden under every
    model -- a safety net over the whole protocol + speculation stack.
    """
    layout = Layout()
    x_addr = layout.word()

    def build(skews: List[int]) -> List[Program]:
        t0 = Assembler("corr.t0")
        t0.li(R_ADDR_X, x_addr).li(R_ONE, 1)
        _skew(t0, skews[0])
        t0.store(R_ONE, base=R_ADDR_X)
        t0.halt()

        t1 = Assembler("corr.t1")
        t1.li(R_ADDR_X, x_addr)
        _skew(t1, skews[1])
        t1.load(R_OBS, base=R_ADDR_X)
        t1.load(R_OBS2, base=R_ADDR_X)
        t1.halt()
        return [t0.build(), t1.build()]

    def observe(result) -> Outcome:
        return (result.core_reg(1, R_OBS), result.core_reg(1, R_OBS2))

    allowed = frozenset({(0, 0), (0, 1), (1, 1)})
    return LitmusTest(
        name="coherence-read-read",
        build=build,
        n_threads=2,
        observe=observe,
        allowed={model: allowed for model in ConsistencyModel},
    )


def atomicity() -> LitmusTest:
    """Both threads fetch-add the same word: the atomics must never
    collide (final value 2, and the two loaded values differ)."""
    layout = Layout()
    x_addr = layout.word()

    def build(skews: List[int]) -> List[Program]:
        progs = []
        for tid in range(2):
            asm = Assembler(f"atomicity.t{tid}")
            asm.li(R_ADDR_X, x_addr).li(R_ONE, 1)
            _skew(asm, skews[tid])
            asm.fetch_add(R_OBS, base=R_ADDR_X, addend=R_ONE)
            asm.halt()
            progs.append(asm.build())
        return progs

    def observe(result) -> Outcome:
        return (result.core_reg(0, R_OBS), result.core_reg(1, R_OBS),
                result.read_word(x_addr))

    allowed = frozenset({(0, 1, 2), (1, 0, 2)})
    return LitmusTest(
        name="atomicity",
        build=build,
        n_threads=2,
        observe=observe,
        allowed={model: allowed for model in ConsistencyModel},
    )


# --------------------------------------------------------------------------
# Canonical litmus shapes as fence-free IR
#
# The fence synthesizer (repro.verification.synth) works on the
# shrinkable litmus IR (repro.workloads.randmix.MemOp), not on the
# assembler programs above: it needs to *edit* the program (insert
# fences into gaps) and re-run it.  These are the textbook shapes,
# fence-free by construction -- the synthesizer's job is to put the
# fences back.  Written values are globally unique and nonzero so the
# checker's reads-from reconstruction stays exact.

def sb_ops():
    """Store buffering (SB / Dekker), padded: store then load, crosswise.

    The relaxed outcome (both loads reading the initial value) needs
    store->load reordering -- the one relaxation this machine actually
    performs.  As in :func:`store_buffering`, a cold-miss padding store
    ahead of each flag store delays its drain long enough for the load
    to overtake it, so the relaxation is *dynamically* observable and
    the synthesizer's execution oracle has something to chew on.
    Expected minimal fix: one STORE_LOAD fence per thread.
    """
    from repro.workloads.randmix import MemOp, litmus_addr
    x, y = litmus_addr(0), litmus_addr(1)
    pad0, pad1 = litmus_addr(2), litmus_addr(3)
    return (
        (MemOp("store", addr=pad0, value=101),
         MemOp("store", addr=x, value=1),
         MemOp("load", addr=y)),
        (MemOp("store", addr=pad1, value=102),
         MemOp("store", addr=y, value=2),
         MemOp("load", addr=x)),
    )


def mp_ops():
    """Message passing (MP): publish data then flag; read flag then data.

    The relaxed outcome (flag observed, stale data) needs store->store
    or load->load reordering.  Our machine never performs either, so
    only the synthesizer's *static* witness oracle can see the hole --
    exactly the case the two-layer oracle exists for.  Expected minimal
    fix: STORE_STORE in the writer, LOAD_LOAD in the reader.
    """
    from repro.workloads.randmix import MemOp, litmus_addr
    data, flag = litmus_addr(0), litmus_addr(1)
    return (
        (MemOp("store", addr=data, value=42),
         MemOp("store", addr=flag, value=1)),
        (MemOp("load", addr=flag),
         MemOp("load", addr=data)),
    )


def lb_ops():
    """Load buffering (LB): load then store, crosswise.

    The relaxed outcome (each load reading the other thread's store)
    needs load->store reordering -- again never performed by this
    in-order machine, so static-oracle-only.  Expected minimal fix:
    one LOAD_STORE fence per thread.
    """
    from repro.workloads.randmix import MemOp, litmus_addr
    x, y = litmus_addr(0), litmus_addr(1)
    return (
        (MemOp("load", addr=x),
         MemOp("store", addr=y, value=1)),
        (MemOp("load", addr=y),
         MemOp("store", addr=x, value=2)),
    )


def canonical_litmus_ir():
    """name -> fence-free litmus IR, the synthesizer's standard diet."""
    return {
        "sb": sb_ops(),
        "mp": mp_ops(),
        "lb": lb_ops(),
    }


def all_litmus_tests() -> List[LitmusTest]:
    """The full litmus battery."""
    return [
        store_buffering(fenced=False),
        store_buffering(fenced=True),
        store_buffering(fenced=False, padded=True),
        store_buffering(fenced=True, padded=True),
        message_passing(fenced=False),
        message_passing(fenced=True),
        coherence_read_read(),
        atomicity(),
    ]

"""InvisiFence reproduction: performance-transparent memory ordering.

A from-scratch multiprocessor simulator (in-order cores, MESI directory
coherence, crossbar interconnect) plus an implementation of InvisiFence
(Blundell, Martin, Wenisch -- ISCA 2009): post-retirement speculation
that hides the cost of memory fences, atomics, and strong consistency
models, with speculative state tracked at cache-block granularity.

Quick start::

    from repro import SystemConfig, ConsistencyModel, SpeculationMode, run_system
    from repro.workloads import locks

    config = SystemConfig(n_cores=4).with_consistency(ConsistencyModel.TSO)
    workload = locks.lock_contention(n_threads=4, increments=50)
    result = run_system(config, workload.programs, workload.initial_memory)
    print(result.cycles)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
reproduced tables/figures.
"""

from repro.sim.config import (
    CacheConfig,
    ConsistencyModel,
    CoreConfig,
    InterconnectConfig,
    MemoryConfig,
    RollbackStrategy,
    SpeculationConfig,
    SpeculationMode,
    SystemConfig,
    ViolationGranularity,
    paper_table2_config,
)
from repro.isa import Assembler, FenceKind, Program
from repro.faults import DeadlockError, FaultPlan, LivelockError, Watchdog
from repro.system import System, SystemResult, run_system
from repro.cpu.core import StallCause
from repro.core import (
    InvisiFenceController,
    StorageModel,
    ViolationReason,
    invisifence_storage_bits,
    per_store_storage_bits,
)

__version__ = "1.0.0"

__all__ = [
    "CacheConfig",
    "ConsistencyModel",
    "CoreConfig",
    "InterconnectConfig",
    "MemoryConfig",
    "RollbackStrategy",
    "SpeculationConfig",
    "SpeculationMode",
    "SystemConfig",
    "ViolationGranularity",
    "paper_table2_config",
    "Assembler",
    "FenceKind",
    "Program",
    "DeadlockError",
    "FaultPlan",
    "LivelockError",
    "Watchdog",
    "System",
    "SystemResult",
    "run_system",
    "StallCause",
    "InvisiFenceController",
    "StorageModel",
    "ViolationReason",
    "invisifence_storage_bits",
    "per_store_storage_bits",
    "__version__",
]

"""Consistency axioms checked over a recorded execution.

Two layers of checking:

* **Coherence-level axioms** (this module): read provenance (no
  out-of-thin-air values), per-location coherence (no thread observes a
  location's writes out of their single global order), RMW atomicity
  (no write intervenes between an atomic's read and write), and
  store-forwarding sanity (a forwarded load returned the latest
  program-order-earlier buffered store's value).  These operate on the
  committed, globally-visible access log in apply order -- which, under
  a single-writer coherence protocol, *is* each location's coherence
  order.  They hold under every consistency model.

* **Per-model ordering axioms** (:mod:`repro.verification.ordering`,
  dispatched from :func:`check_execution` when a ``model`` is given):
  reconstruct reads-from / coherence-order / from-reads edges plus the
  model's preserved-program-order edges (SC: all of po; TSO: po minus
  StoreLoad, with store-buffer forwarding allowed; RMO: only fence- and
  atomic-induced edges) and require the union to be acyclic.  This is
  the axiomatic, Alglave-style check that catches ordering bugs --
  e.g. a store-buffer forwarding error or a rollback that leaks a
  speculative store -- which the coherence-level axioms cannot see.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from repro.verification.recorder import AccessKind, AccessRecord, ExecutionRecorder


class ConsistencyViolation(AssertionError):
    """A recorded execution broke a consistency axiom."""


def _write_order(log: List[AccessRecord]) -> Dict[int, List[AccessRecord]]:
    """Per-location list of writes in coherence (apply) order."""
    order: Dict[int, List[AccessRecord]] = defaultdict(list)
    for record in log:
        if record.is_write:
            order[record.addr].append(record)
    return order


def check_read_provenance(recorder: ExecutionRecorder,
                          initial: Optional[Dict[int, int]] = None) -> int:
    """Every read's value was produced by some write (or is the initial
    value): no out-of-thin-air values, no torn words.

    Returns the number of reads checked.
    """
    initial = initial or {}
    log = recorder.sorted_log()
    writes = _write_order(log)
    checked = 0
    for record in log:
        if record.kind is AccessKind.WRITE:
            continue
        legal = {initial.get(record.addr, 0)}
        legal.update(w.written_value for w in writes.get(record.addr, []))
        if record.value not in legal:
            raise ConsistencyViolation(
                f"core {record.core} read {record.value} from "
                f"{record.addr:#x} at cycle {record.cycle}, but no write "
                f"ever produced that value"
            )
        checked += 1
    return checked


def check_per_location_coherence(recorder: ExecutionRecorder,
                                 initial: Optional[Dict[int, int]] = None,
                                 ) -> Tuple[int, int]:
    """Each thread observes every location's writes in one global order,
    never going backwards (CoRR/CoWR freedom).

    Requires write values to be distinguishable per location to map a
    read to its producing write; locations with duplicate written values
    cannot be checked this way.  Returns ``(locations_checked,
    locations_skipped)`` so a caller -- in particular the fuzzer, whose
    generators guarantee unique values -- can tell a clean pass from a
    vacuous one.
    """
    initial = initial or {}
    log = recorder.sorted_log()
    writes = _write_order(log)
    checked = 0
    skipped = 0
    for addr, addr_writes in writes.items():
        values = [initial.get(addr, 0)]
        values += [w.written_value for w in addr_writes]
        if len(set(values)) != len(values):
            # Some value (possibly the initial one) is written more than
            # once: a read of it has ambiguous provenance.  Skip; the
            # provenance and RMW checks still cover this location, and
            # the skip is surfaced in check_execution's report.
            skipped += 1
            continue
        index_of = {value: i for i, value in enumerate(values)}
        last_seen: Dict[int, int] = defaultdict(int)
        for record in log:
            if record.addr != addr:
                continue
            if record.forwarded:
                # A forwarded load observes a *buffered* store that has
                # not applied yet, so its position in apply order says
                # nothing about coherence order.  Forwarded reads are
                # checked by check_forwarding and the ordering axioms.
                continue
            if record.kind is AccessKind.WRITE:
                observed = index_of[record.written_value]
            else:
                if record.value not in index_of:
                    raise ConsistencyViolation(
                        f"read of unknown value {record.value} at {addr:#x}"
                    )
                observed = index_of[record.value]
            if observed < last_seen[record.core]:
                raise ConsistencyViolation(
                    f"core {record.core} observed {addr:#x} going backwards "
                    f"(write #{observed} after #{last_seen[record.core]}) "
                    f"at cycle {record.cycle}"
                )
            if record.kind is AccessKind.RMW and record.written is not None:
                # A successful RMW also *produces* the next write: the
                # observer's horizon advances to its own write, so a
                # later read of anything older (including the value the
                # RMW itself loaded) is a coherence violation.
                observed = index_of[record.written]
            last_seen[record.core] = max(last_seen[record.core], observed)
        checked += 1
    return checked, skipped


def check_rmw_atomicity(recorder: ExecutionRecorder,
                        initial: Optional[Dict[int, int]] = None) -> int:
    """No write intervenes between an atomic's read and its write.

    For every successful RMW, the value it loaded must be exactly the
    value left by the write immediately preceding the RMW's own write in
    the location's coherence order.  Needs no value uniqueness.
    """
    initial = initial or {}
    writes = _write_order(recorder.sorted_log())
    checked = 0
    for addr, addr_writes in writes.items():
        for position, record in enumerate(addr_writes):
            if record.kind is not AccessKind.RMW:
                continue
            if position == 0:
                expected = initial.get(addr, 0)
            else:
                expected = addr_writes[position - 1].written_value
            if record.value != expected:
                raise ConsistencyViolation(
                    f"RMW atomicity broken at {addr:#x}: core {record.core} "
                    f"loaded {record.value} but the preceding write left "
                    f"{expected} (cycle {record.cycle})"
                )
            checked += 1
    return checked


def check_forwarding(recorder: ExecutionRecorder,
                     initial: Optional[Dict[int, int]] = None) -> int:
    """Every store-buffer-forwarded load read the *latest* program-order
    earlier store its own core made to that address.

    Forwarded loads are tagged by the recorder; provenance via value
    matching requires per-location unique written values, so ambiguous
    forwarded reads are skipped (they are still covered by
    :func:`check_read_provenance`).  Returns the number of forwarded
    loads checked.
    """
    initial = initial or {}
    log = recorder.sorted_log()
    checked = 0
    # Per (core, addr): po-sorted list of that core's own writes.
    own_writes: Dict[Tuple[int, int], List[AccessRecord]] = defaultdict(list)
    dup_values: Dict[Tuple[int, int], bool] = {}
    for record in log:
        if record.is_write:
            own_writes[(record.core, record.addr)].append(record)
    for key, ws in own_writes.items():
        ws.sort(key=lambda w: w.po)
        values = [w.written_value for w in ws]
        dup_values[key] = len(set(values)) != len(values)
    for record in log:
        if not record.forwarded:
            continue
        if record.po < 0:
            raise ValueError(
                "forwarded record lacks a program-order index; forwarding "
                "can only be checked on recorder-instrumented runs"
            )
        key = (record.core, record.addr)
        if dup_values.get(key):
            continue
        latest = None
        for w in own_writes.get(key, []):
            if w.po < record.po:
                latest = w
            else:
                break
        if latest is None:
            raise ConsistencyViolation(
                f"core {record.core} forwarded {record.value} from "
                f"{record.addr:#x} (po {record.po}) with no earlier own "
                f"store to forward from"
            )
        if record.value != latest.written_value:
            raise ConsistencyViolation(
                f"core {record.core} forwarded stale value {record.value} "
                f"from {record.addr:#x} (po {record.po}); latest own store "
                f"(po {latest.po}) wrote {latest.written_value}"
            )
        checked += 1
    return checked


def check_execution(recorder: ExecutionRecorder,
                    initial: Optional[Dict[int, int]] = None,
                    model=None) -> Dict[str, int]:
    """Run every axiom; returns per-check counts, raises on violation.

    ``model`` (a :class:`repro.sim.config.ConsistencyModel`) additionally
    runs the per-model ordering check from
    :mod:`repro.verification.ordering` over the recorded execution.

    The report includes ``locations_skipped`` (locations the coherence
    check could not cover because of duplicate written values -- a fuzz
    run should assert this is zero) and ``pending_at_end`` (speculative
    records neither committed nor discarded; nonzero raises, because the
    log would not be a complete architectural execution).
    """
    pending = recorder.pending_count
    if pending:
        raise ConsistencyViolation(
            f"{pending} speculative record(s) still pending at end of run: "
            "the simulation ended mid-episode and the log is incomplete"
        )
    coherence_checked, locations_skipped = check_per_location_coherence(
        recorder, initial)
    report = {
        "reads_checked": check_read_provenance(recorder, initial),
        "locations_coherence_checked": coherence_checked,
        "locations_skipped": locations_skipped,
        "rmws_checked": check_rmw_atomicity(recorder, initial),
        "forwards_checked": check_forwarding(recorder, initial),
        "accesses_recorded": len(recorder),
        "speculative_discarded": recorder.discarded,
        "pending_at_end": pending,
    }
    if model is not None:
        from repro.verification.ordering import check_model_ordering
        ordering = check_model_ordering(recorder, model, initial)
        report["ordering_events"] = ordering.events
        report["ordering_edges"] = ordering.edges
        report["ordering_locations_skipped"] = ordering.locations_skipped
    return report

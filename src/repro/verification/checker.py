"""Consistency axioms checked over a recorded execution.

All checks operate on the committed, globally-visible access log in
apply order -- which, under a single-writer coherence protocol, *is*
each location's coherence order.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional

from repro.verification.recorder import AccessKind, AccessRecord, ExecutionRecorder


class ConsistencyViolation(AssertionError):
    """A recorded execution broke a consistency axiom."""


def _write_order(log: List[AccessRecord]) -> Dict[int, List[AccessRecord]]:
    """Per-location list of writes in coherence (apply) order."""
    order: Dict[int, List[AccessRecord]] = defaultdict(list)
    for record in log:
        if record.is_write:
            order[record.addr].append(record)
    return order


def check_read_provenance(recorder: ExecutionRecorder,
                          initial: Optional[Dict[int, int]] = None) -> int:
    """Every read's value was produced by some write (or is the initial
    value): no out-of-thin-air values, no torn words.

    Returns the number of reads checked.
    """
    initial = initial or {}
    log = recorder.sorted_log()
    writes = _write_order(log)
    checked = 0
    for record in log:
        if record.kind is AccessKind.WRITE:
            continue
        legal = {initial.get(record.addr, 0)}
        legal.update(w.written_value for w in writes.get(record.addr, []))
        if record.value not in legal:
            raise ConsistencyViolation(
                f"core {record.core} read {record.value} from "
                f"{record.addr:#x} at cycle {record.cycle}, but no write "
                f"ever produced that value"
            )
        checked += 1
    return checked


def check_per_location_coherence(recorder: ExecutionRecorder,
                                 initial: Optional[Dict[int, int]] = None) -> int:
    """Each thread observes every location's writes in one global order,
    never going backwards (CoRR/CoWR freedom).

    Requires write values to be distinguishable per location to map a
    read to its producing write; locations with duplicate written values
    are skipped (returned count covers checked locations only).
    """
    initial = initial or {}
    log = recorder.sorted_log()
    writes = _write_order(log)
    checked = 0
    for addr, addr_writes in writes.items():
        values = [initial.get(addr, 0)]
        values += [w.written_value for w in addr_writes]
        if len(set(values)) != len(values):
            # Some value (possibly the initial one) is written more than
            # once: a read of it has ambiguous provenance.  Skip; the
            # provenance and RMW checks still cover this location.
            continue
        index_of = {value: i for i, value in enumerate(values)}
        last_seen: Dict[int, int] = defaultdict(int)
        for record in log:
            if record.addr != addr:
                continue
            if record.kind is AccessKind.WRITE:
                observed = index_of[record.written_value]
            else:
                if record.value not in index_of:
                    raise ConsistencyViolation(
                        f"read of unknown value {record.value} at {addr:#x}"
                    )
                observed = index_of[record.value]
                if record.kind is AccessKind.RMW and record.written is not None:
                    # The RMW also *produces* the next write.
                    pass
            if observed < last_seen[record.core]:
                raise ConsistencyViolation(
                    f"core {record.core} observed {addr:#x} going backwards "
                    f"(write #{observed} after #{last_seen[record.core]}) "
                    f"at cycle {record.cycle}"
                )
            last_seen[record.core] = max(last_seen[record.core], observed)
        checked += 1
    return checked


def check_rmw_atomicity(recorder: ExecutionRecorder,
                        initial: Optional[Dict[int, int]] = None) -> int:
    """No write intervenes between an atomic's read and its write.

    For every successful RMW, the value it loaded must be exactly the
    value left by the write immediately preceding the RMW's own write in
    the location's coherence order.  Needs no value uniqueness.
    """
    initial = initial or {}
    writes = _write_order(recorder.sorted_log())
    checked = 0
    for addr, addr_writes in writes.items():
        for position, record in enumerate(addr_writes):
            if record.kind is not AccessKind.RMW:
                continue
            if position == 0:
                expected = initial.get(addr, 0)
            else:
                expected = addr_writes[position - 1].written_value
            if record.value != expected:
                raise ConsistencyViolation(
                    f"RMW atomicity broken at {addr:#x}: core {record.core} "
                    f"loaded {record.value} but the preceding write left "
                    f"{expected} (cycle {record.cycle})"
                )
            checked += 1
    return checked


def check_execution(recorder: ExecutionRecorder,
                    initial: Optional[Dict[int, int]] = None) -> Dict[str, int]:
    """Run every axiom; returns per-check counts, raises on violation."""
    return {
        "reads_checked": check_read_provenance(recorder, initial),
        "locations_coherence_checked": check_per_location_coherence(recorder, initial),
        "rmws_checked": check_rmw_atomicity(recorder, initial),
        "accesses_recorded": len(recorder),
        "speculative_discarded": recorder.discarded,
    }

"""Automatic fence synthesis against the per-model ordering checker.

ROADMAP item 3: given a fence-free (or under-fenced) litmus program
running on the relaxed (RMO) machine, find a **minimal set of fence
placements** whose insertion restores a stronger *target* model's
outcomes (SC, or TSO), in the style of Alglave et al.'s "Don't sit on
the fence" -- fence selection as minimal-set search against a
memory-model oracle.  The search is the shared delta-debugging engine
(:func:`repro.verification.minimize.minimize`) run *upward*: start from
a FULL fence in every candidate gap (provably sufficient -- it
reinstates all of program order), then greedily drop fences and weaken
the survivors to directional kinds while the program stays clean.

The oracle has two layers
=========================

**Static (exact):** enumerate every axiomatic execution witness of the
program -- all per-location coherence orders x all reads-from choices
-- encode each as a synthetic recorder log, and keep the fence set only
if every witness consistent with the *source* model's axioms (fences
included) also satisfies the *target* model's axioms
(:func:`check_model_ordering` both times).  This layer is complete up
to ``max_witnesses``: it sees relaxations the simulated machine never
performs dynamically.  That matters because our machine only ever
relaxes store->load (in-order core, blocking loads, FIFO store buffer)
-- MP's store->store / load->load holes and LB's load->store hole are
*architecturally* present under RMO but never manifest in execution, so
an execution-only oracle would wrongly certify the empty fence set.

**Dynamic (confirming):** run the fenced program on the actual RMO
machine across the fuzzer's axes -- speculation modes x timing skews
(plus seeded skew retries) x superblock fusion on/off -- and check each
recorded execution against the target model.  Timing noise therefore
gets extra chances to *refute* a candidate reduction, never to certify
one; and a machine weaker than its own axioms (a real bug) is caught
here rather than silently fenced around.

Soundness caveat (see docs/VERIFICATION.md): the static layer is exact
only below the witness cap, the dynamic layer is execution-based, and
greedy minimization is per-seed -- the result is a minimal *fixpoint*
for the sweep it ran, reproducible for a fixed seed, not a certified
global minimum.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from itertools import permutations, product
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.isa.instructions import FenceKind
from repro.sim.config import ConsistencyModel, SpeculationMode
from repro.system import System, SystemResult
from repro.verification.checker import ConsistencyViolation, check_execution
from repro.verification.fuzz import (
    FUZZ_MAX_CYCLES,
    SKEW_CHOICES,
    SWEEP_SPECS,
    fuzz_config,
)
from repro.verification.minimize import Budget, minimize
from repro.verification.ordering import check_model_ordering
from repro.verification.recorder import (
    AccessKind,
    AccessRecord,
    ExecutionRecorder,
    FenceRecord,
)
from repro.workloads.randmix import (
    FencePlacement,
    MemOp,
    compile_litmus_ops,
    fence_gaps,
    insert_fences,
)

#: Weakening ladder: kinds tried (in order) as replacements for a FULL
#: fence the drop pass could not remove.  Non-draining directional
#: fences first -- on this machine only StoreLoad/FULL fences stall the
#: core, so a successful weakening to the first three is free at run
#: time; STORE_LOAD last, still cheaper than FULL for the checker (it
#: orders one class pair, not four).
WEAKEN_LADDER = (FenceKind.LOAD_LOAD, FenceKind.LOAD_STORE,
                 FenceKind.STORE_STORE, FenceKind.STORE_LOAD)

#: Default cap on enumerated witnesses per static oracle query.  Litmus
#: shapes sit far below it (SB/MP/LB have <= 4); a program that
#: exceeds it marks the result ``capped`` instead of silently passing.
MAX_WITNESSES = 20_000


@dataclass
class OracleStats:
    """Work counters for one synthesis run (all layers)."""

    static_checks: int = 0       #: static oracle queries (fence sets tried)
    witnesses_checked: int = 0   #: witness logs fed to the checker
    dynamic_runs: int = 0        #: full machine simulations
    capped: bool = False         #: a static query hit ``max_witnesses``


# ------------------------------------------------------ witness oracle

class _Event:
    """One memory event of the static skeleton (fences live apart)."""

    __slots__ = ("tid", "po", "kind", "addr", "wval")

    def __init__(self, tid: int, po: int, kind: str, addr: int,
                 wval: Optional[int]) -> None:
        self.tid = tid
        self.po = po
        self.kind = kind        # "load" | "store" | "swap"
        self.addr = addr
        self.wval = wval        # written value (None for loads)


def _skeleton(threads: Sequence[Sequence[MemOp]]
              ) -> Tuple[List[_Event], List[FenceRecord]]:
    events: List[_Event] = []
    fences: List[FenceRecord] = []
    values = []
    for tid, ops in enumerate(threads):
        for po, op in enumerate(ops):
            if op.kind == "fence":
                fences.append(FenceRecord(core=tid, po=po, kind=op.fence,
                                          speculative=False))
            elif op.kind == "load":
                events.append(_Event(tid, po, "load", op.addr, None))
            elif op.kind in ("store", "swap"):
                events.append(_Event(tid, po, op.kind, op.addr, op.value))
                values.append(op.value)
            elif op.kind != "delay":
                raise ValueError(f"unknown litmus op kind {op.kind!r}")
    if len(set(values)) != len(values) or 0 in values:
        raise ValueError(
            "fence synthesis requires globally unique nonzero written "
            "values (reads-from must be recoverable by value)")
    return events, fences


def enumerate_witness_logs(threads: Sequence[Sequence[MemOp]]
                           ) -> Iterator[ExecutionRecorder]:
    """Every axiomatic execution witness of a litmus program, as a log.

    A witness is one choice of per-location coherence order (all
    permutations of each location's writes, pruned of those that invert
    one thread's program order -- uniproc rejects them under every
    model) crossed with one reads-from choice per read (any write to
    the same location except the reading RMW itself, or the initial
    value).  The witness is encoded as a synthetic recorder log the
    ordering checker accepts natively: write cycles encode coherence
    position (the checker derives co from apply order), read values
    encode rf (the checker derives rf by value), and RMW atomicity
    needs no special casing -- a write intervening between an RMW and
    the write it read from closes a co/fr cycle of two, so every model
    rejects that witness.
    """
    events, fences = _skeleton(threads)
    writes_by_addr: Dict[int, List[int]] = {}
    for i, ev in enumerate(events):
        if ev.wval is not None:
            writes_by_addr.setdefault(ev.addr, []).append(i)

    def po_consistent(order: Tuple[int, ...]) -> bool:
        last: Dict[int, int] = {}
        for i in order:
            ev = events[i]
            if ev.tid in last and last[ev.tid] > ev.po:
                return False
            last[ev.tid] = ev.po
        return True

    co_domains = [
        [p for p in permutations(ws) if po_consistent(p)]
        for _, ws in sorted(writes_by_addr.items())
    ]
    readers = [i for i, ev in enumerate(events) if ev.kind in ("load", "swap")]
    rf_domains = [
        [w for w in writes_by_addr.get(events[i].addr, []) if w != i] + [None]
        for i in readers
    ]

    for co_combo in product(*co_domains):
        cycle_of: Dict[int, int] = {}
        for order in co_combo:
            for pos, i in enumerate(order):
                cycle_of[i] = pos + 1
        for rf_combo in product(*rf_domains):
            rf = dict(zip(readers, rf_combo))
            records = []
            for seq, ev in enumerate(events):
                if ev.kind == "load":
                    src = rf[seq]
                    value = 0 if src is None else events[src].wval
                    records.append(AccessRecord(
                        seq, 0, ev.tid, AccessKind.READ, ev.addr, value,
                        None, False, po=ev.po))
                elif ev.kind == "store":
                    records.append(AccessRecord(
                        seq, cycle_of[seq], ev.tid, AccessKind.WRITE,
                        ev.addr, ev.wval, None, False, po=ev.po))
                else:  # swap
                    src = rf[seq]
                    value = 0 if src is None else events[src].wval
                    records.append(AccessRecord(
                        seq, cycle_of[seq], ev.tid, AccessKind.RMW,
                        ev.addr, value, ev.wval, False, po=ev.po))
            recorder = ExecutionRecorder()
            recorder.committed = records
            recorder.fences = list(fences)
            yield recorder


def static_counterexample(threads: Sequence[Sequence[MemOp]],
                          source: ConsistencyModel,
                          target: ConsistencyModel,
                          max_witnesses: int = MAX_WITNESSES,
                          stats: Optional[OracleStats] = None,
                          ) -> Optional[str]:
    """A witness allowed by ``source`` (fences included) that violates
    ``target``, rendered; None when no such witness exists (up to the
    cap -- a capped query sets ``stats.capped``)."""
    stats = stats if stats is not None else OracleStats()
    stats.static_checks += 1
    checked = 0
    for recorder in enumerate_witness_logs(threads):
        if checked >= max_witnesses:
            stats.capped = True
            break
        checked += 1
        stats.witnesses_checked += 1
        try:
            check_model_ordering(recorder, source)
        except ConsistencyViolation:
            continue            # impossible under the source model
        try:
            check_model_ordering(recorder, target)
        except ConsistencyViolation as exc:
            return str(exc)
    return None


# ------------------------------------------------------ dynamic oracle

def dynamic_counterexample(threads: Sequence[Sequence[MemOp]],
                           source: ConsistencyModel,
                           target: ConsistencyModel,
                           specs: Sequence[SpeculationMode] = SWEEP_SPECS,
                           skew_sets: Sequence[Tuple[int, ...]] = ((),),
                           superblocks_axis: Sequence[bool] = (True, False),
                           stats: Optional[OracleStats] = None,
                           ) -> Optional[str]:
    """Run the program on the ``source`` machine across the sweep axes
    and check every recorded execution against ``target``; the first
    violating point rendered, or None when the whole grid is clean."""
    stats = stats if stats is not None else OracleStats()
    for spec, skews, fuse in product(specs, skew_sets, superblocks_axis):
        programs = compile_litmus_ops(threads, skews=skews or None,
                                      name="synth")
        config = fuzz_config(len(threads), source, spec)
        if not fuse:
            config = config.with_superblocks(False)
        system = System(config, programs)
        recorder = ExecutionRecorder.attach(system)
        system.run(check_invariants=True, max_cycles=FUZZ_MAX_CYCLES)
        stats.dynamic_runs += 1
        try:
            report = check_execution(recorder, model=target)
        except ConsistencyViolation as exc:
            return (f"spec={spec.value} skews={tuple(skews)} "
                    f"superblocks={fuse}: {exc}")
        if report["locations_skipped"] or report.get(
                "ordering_locations_skipped"):
            raise RuntimeError(
                "synthesis workload produced duplicate written values; "
                "the dynamic oracle would be vacuous")
    return None


# ------------------------------------------------------------ synthesis

@dataclass(frozen=True)
class SynthesisResult:
    """Outcome of one fence-synthesis run (a reproducible artifact)."""

    threads: Tuple[Tuple[MemOp, ...], ...]
    source: ConsistencyModel
    target: ConsistencyModel
    placements: Tuple[FencePlacement, ...]
    sufficient: bool         #: final set confirmed by both oracle layers
    candidate_gaps: int      #: fence points the search ranged over
    oracle_queries: int      #: fence sets submitted to the oracle
    static_checks: int
    witnesses_checked: int
    dynamic_runs: int
    capped: bool             #: a static query hit the witness cap
    seed: int

    @property
    def fence_count(self) -> int:
        return len(self.placements)

    def describe(self) -> str:
        fences = (", ".join(p.describe() for p in self.placements)
                  or "none")
        return (f"{self.source.value}->{self.target.value}: "
                f"{self.fence_count} fence(s) [{fences}] "
                f"({self.witnesses_checked} witnesses, "
                f"{self.dynamic_runs} runs)")


def synthesize_fences(threads: Sequence[Sequence[MemOp]],
                      target: ConsistencyModel,
                      source: ConsistencyModel = ConsistencyModel.RMO,
                      seed: int = 0,
                      max_queries: int = 200,
                      skew_retries: int = 2,
                      specs: Sequence[SpeculationMode] = SWEEP_SPECS,
                      superblocks_axis: Sequence[bool] = (True, False),
                      max_witnesses: int = MAX_WITNESSES,
                      ) -> SynthesisResult:
    """Search the minimal fence set restoring ``target`` on the
    ``source`` machine.

    Seeded-deterministic: the skew-retry sets are drawn once from
    ``seed`` and the greedy passes visit candidates in a fixed order,
    so the same inputs always synthesize the same fence set.
    ``max_queries`` caps oracle queries (each one static witness sweep
    plus one dynamic machine sweep) through the shared
    :class:`~repro.verification.minimize.Budget`; a refused query
    rejects the candidate reduction, so exhaustion can only leave
    *extra* fences, never certify an unsound set.
    """
    ir = tuple(tuple(ops) for ops in threads)
    n_threads = len(ir)
    rng = random.Random(seed)
    # Base grid: unskewed plus one fixed stagger; retries add seeded
    # extra timings so noise gets more chances to refute a reduction.
    skew_sets = [tuple(0 for _ in range(n_threads)),
                 tuple(SKEW_CHOICES[(tid + 1) % len(SKEW_CHOICES)]
                       for tid in range(n_threads))]
    for _ in range(skew_retries):
        skew_sets.append(tuple(rng.choice(SKEW_CHOICES)
                               for _ in range(n_threads)))
    stats = OracleStats()
    budget = Budget(max_queries)

    def sufficient(placements: Tuple[FencePlacement, ...]) -> bool:
        if not budget.spend():
            return False
        fenced = insert_fences(ir, placements)
        if static_counterexample(fenced, source, target,
                                 max_witnesses=max_witnesses,
                                 stats=stats) is not None:
            return False
        return dynamic_counterexample(
            fenced, source, target, specs=specs, skew_sets=skew_sets,
            superblocks_axis=superblocks_axis, stats=stats) is None

    def result(placements: Tuple[FencePlacement, ...],
               ok: bool, gaps: int) -> SynthesisResult:
        return SynthesisResult(
            threads=ir, source=source, target=target,
            placements=placements, sufficient=ok, candidate_gaps=gaps,
            oracle_queries=budget.runs, static_checks=stats.static_checks,
            witnesses_checked=stats.witnesses_checked,
            dynamic_runs=stats.dynamic_runs, capped=stats.capped,
            seed=seed)

    gaps = fence_gaps(ir)
    if sufficient(()):
        # Already strong enough (e.g. SB targeting TSO): nothing to add.
        return result((), True, len(gaps))
    full = tuple(FencePlacement(tid, gap, FenceKind.FULL)
                 for tid, gap in gaps)
    if not sufficient(full):
        # Not fixable by fencing (or the budget refused the very first
        # query): report the full set as insufficient rather than guess.
        return result(full, False, len(gaps))

    def drop_pass(state: Tuple[FencePlacement, ...]):
        for i in range(len(state) - 1, -1, -1):
            def edit(s, i=i):
                return s[:i] + s[i + 1:] if i < len(s) else None
            yield edit

    def weaken_pass(state: Tuple[FencePlacement, ...]):
        for i in range(len(state) - 1, -1, -1):
            for kind in WEAKEN_LADDER:
                def edit(s, i=i, kind=kind):
                    # Only FULL fences weaken; the directional kinds
                    # are mutually incomparable.
                    if i >= len(s) or s[i].kind is not FenceKind.FULL:
                        return None
                    return s[:i] + (s[i]._replace(kind=kind),) + s[i + 1:]
                yield edit

    def keep(candidate: Tuple[FencePlacement, ...]
             ) -> Optional[Tuple[FencePlacement, ...]]:
        return candidate if sufficient(candidate) else None

    final = minimize(full, (drop_pass, weaken_pass), keep, budget)
    # Every adopted state passed the oracle, and `full` did too, so the
    # fixpoint is confirmed-sufficient even if the budget ran dry.
    return result(final, True, len(gaps))


# ----------------------------------------------------------- cycle cost

def fence_cost(threads: Sequence[Sequence[MemOp]],
               placements: Sequence[FencePlacement] = (),
               spec: SpeculationMode = SpeculationMode.NONE,
               source: ConsistencyModel = ConsistencyModel.RMO,
               skews: Sequence[int] = ()) -> int:
    """Cycles to run the (fenced) program on the ``source`` machine.

    The E13 experiment's measuring stick: the same synthesized fence
    set costs a store-buffer drain per StoreLoad/FULL fence with
    speculation off, and close to nothing with InvisiFence speculating
    through it -- the paper's headline read from the fence side.
    """
    ir = insert_fences(threads, placements)
    programs = compile_litmus_ops(ir, skews=skews or None, name="cost")
    config = fuzz_config(len(ir), source, spec)
    system = System(config, programs)
    system.run(check_invariants=True, max_cycles=FUZZ_MAX_CYCLES)
    return SystemResult(system).cycles

"""Per-model program-order axioms over a recorded execution.

Axiomatic checking in the style of Alglave et al.'s "herding cats" /
"Don't sit on the fence": reconstruct the execution witness from the
committed access log, then require the union of the model's ordering
relations to be acyclic.

Relations
=========

From the log (apply order under a single-writer protocol is coherence
order) and per-location **unique written values** we derive:

* ``co``  -- per-location coherence order: the writes in apply order;
* ``rf``  -- reads-from: each read's producing write, found by value
  (locations with duplicate written values cannot be mapped and are
  skipped -- the report counts them so a fuzz run can assert zero);
* ``fr``  -- from-reads: a read precedes every write coherence-after
  the write it read from;
* ``po``  -- each core's program order, recovered from the ``po`` index
  the core stamps on every access at issue time (the recorder's
  program-order stream, including store-buffer-forwarded loads and
  fences).

Per-model preserved program order
=================================

* **SC**: every program-order edge is preserved; the SC axiom is
  ``acyclic(po | rf | co | fr)``.
* **TSO**: program order is preserved except store->load (a store may
  retire into the store buffer while later loads execute); a load may
  read its own core's buffered store (store-buffer forwarding), so
  *internal* rf edges are excluded from the global order.  StoreLoad
  and FULL fences -- and atomics, which drain the buffer under every
  model -- restore the store->load edges across them.
* **RMO**: no program-order edge is preserved on its own; only fences
  (each kind ordering exactly its before/after access classes) and
  atomics induce edges.  Internal rf is excluded as under TSO.

Every model additionally satisfies the **uniproc** (SC-per-location)
axiom: for each location on its own, program order composes acyclically
with rf/co/fr.  This is checked per location, *not* folded into the
global graph -- same-address store->load order mixed into the global
order would wrongly reject TSO's legal store-buffering-with-forwarding
outcomes -- and it catches apply-order-vs-program-order inversions the
value-based per-location check cannot see.

The checker is sound with respect to the repo's machine: the simulated
core is stronger than each model's axioms (in-order, blocking loads,
FIFO store buffer), so any cycle is a real bug -- exactly the
InvisiFence invisibility property the fuzzer hunts for.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.isa.instructions import FenceKind
from repro.sim.config import ConsistencyModel
from repro.verification.checker import ConsistencyViolation
from repro.verification.recorder import (
    AccessKind,
    AccessRecord,
    ExecutionRecorder,
    FenceRecord,
)


@dataclass(frozen=True)
class OrderingReport:
    """Outcome of one per-model ordering check (no violation found)."""

    model: ConsistencyModel
    events: int             #: memory events in the graph
    edges: int              #: ordering edges constructed
    locations_skipped: int  #: locations excluded from rf/fr (duplicate values)


class _Graph:
    """Labelled digraph over small integer nodes with cycle reporting."""

    def __init__(self) -> None:
        self._adj: Dict[int, List[Tuple[int, str]]] = defaultdict(list)
        self._seen = set()
        self.edges = 0

    def add_edge(self, u: int, v: int, label: str) -> None:
        if u == v or (u, v, label) in self._seen:
            return
        self._seen.add((u, v, label))
        self._adj[u].append((v, label))
        self.edges += 1

    def find_cycle(self) -> Optional[List[Tuple[int, str, int]]]:
        """One cycle as ``[(u, label, v), ...]``, or None if acyclic."""
        WHITE, GREY, BLACK = 0, 1, 2
        color: Dict[int, int] = defaultdict(int)
        parent: Dict[int, Tuple[int, str]] = {}
        for root in list(self._adj):
            if color[root] != WHITE:
                continue
            stack: List[Tuple[int, Iterable]] = [(root, iter(self._adj.get(root, ())))]
            color[root] = GREY
            while stack:
                node, it = stack[-1]
                advanced = False
                for (nxt, label) in it:
                    if color[nxt] == GREY:
                        # Back edge: unwind the grey path nxt -> ... -> node.
                        cycle = [(node, label, nxt)]
                        walk = node
                        while walk != nxt:
                            prev, lbl = parent[walk]
                            cycle.append((prev, lbl, walk))
                            walk = prev
                        cycle.reverse()
                        return cycle
                    if color[nxt] == WHITE:
                        color[nxt] = GREY
                        parent[nxt] = (node, label)
                        stack.append((nxt, iter(self._adj.get(nxt, ()))))
                        advanced = True
                        break
                if not advanced:
                    color[node] = BLACK
                    stack.pop()
        return None


def _is_read(r: AccessRecord) -> bool:
    return r.kind is not AccessKind.WRITE


def _is_write_ish(r: AccessRecord) -> bool:
    """Write side of the ppo chains: stores and *all* RMWs.

    A failed CAS writes nothing, but atomics drain the store buffer and
    block the core under every model, so they still transmit
    write-to-write ordering.
    """
    return r.kind is not AccessKind.READ


def _fence_pairs(kind: FenceKind) -> List[Tuple[bool, bool]]:
    """The (before_is_write, after_is_write) classes this fence orders."""
    pairs = []
    if kind.orders_load_load:
        pairs.append((False, False))
    if kind.orders_load_store:
        pairs.append((False, True))
    if kind.orders_store_store:
        pairs.append((True, True))
    if kind.orders_store_load:
        pairs.append((True, False))
    return pairs


def _render_event(events: Sequence[AccessRecord],
                  fence_nodes: Dict[int, FenceRecord], node: int) -> str:
    if node < len(events):
        r = events[node]
        tag = "fwd-" if r.forwarded else ""
        if r.kind is AccessKind.WRITE:
            return (f"c{r.core}:po{r.po} W {r.addr:#x}={r.value} "
                    f"@cy{r.cycle}")
        if r.kind is AccessKind.RMW:
            return (f"c{r.core}:po{r.po} RMW {r.addr:#x} "
                    f"read={r.value} wrote={r.written} @cy{r.cycle}")
        return (f"c{r.core}:po{r.po} {tag}R {r.addr:#x}={r.value} "
                f"@cy{r.cycle}")
    f = fence_nodes[node]
    return f"c{f.core}:po{f.po} FENCE {f.kind.value}"


def _render_cycle(events: Sequence[AccessRecord],
                  fence_nodes: Dict[int, FenceRecord],
                  cycle: List[Tuple[int, str, int]]) -> str:
    lines = []
    for (u, label, v) in cycle:
        lines.append(f"  {_render_event(events, fence_nodes, u)}")
        lines.append(f"    --{label}-->")
    lines.append(f"  {_render_event(events, fence_nodes, cycle[0][0])}")
    return "\n".join(lines)


def check_model_ordering(recorder: ExecutionRecorder,
                         model: ConsistencyModel,
                         initial: Optional[Dict[int, int]] = None,
                         ) -> OrderingReport:
    """Check the recorded execution against ``model``'s ordering axioms.

    Raises :class:`ConsistencyViolation` with the offending cycle
    rendered event-by-event; returns an :class:`OrderingReport` on
    success.
    """
    initial = initial or {}
    events = recorder.sorted_log()
    for r in events:
        if r.po < 0:
            raise ValueError(
                "ordering check requires program-order indices on every "
                "record (run under ExecutionRecorder.attach, or set po "
                "explicitly on hand-built logs)"
            )
    seen_po = set()
    for r in events:
        key = (r.core, r.po)
        if key in seen_po:
            raise ValueError(f"duplicate program-order index {key} in log")
        seen_po.add(key)

    graph = _Graph()
    n = len(events)

    # Per-location graphs for the uniproc (SC-per-location) axiom.  This
    # is deliberately NOT folded into the global graph: same-address
    # program order composes with rf/co/fr only *per location* -- mixed
    # into the global order it would reject legal TSO outcomes such as
    # store buffering with same-address forwarding (SB+rfi).
    loc_graphs: Dict[int, _Graph] = defaultdict(_Graph)

    # ----- coherence order (co) and value -> write maps per location
    co: Dict[int, List[int]] = defaultdict(list)       # addr -> event ids
    producer: Dict[int, Dict[int, int]] = defaultdict(dict)  # addr -> value -> id
    ambiguous = set()
    for i, r in enumerate(events):
        if not r.is_write:
            continue
        addr = r.addr
        value = r.written_value
        if value in producer[addr] or value == initial.get(addr, 0):
            ambiguous.add(addr)
        producer[addr][value] = i
        co[addr].append(i)
    for addr, writes in co.items():
        for a, b in zip(writes, writes[1:]):
            graph.add_edge(a, b, "co")
            loc_graphs[addr].add_edge(a, b, "co")
    co_pos = {}
    for addr, writes in co.items():
        for pos, w in enumerate(writes):
            co_pos[w] = (addr, pos)

    # ----- reads-from (rf) and from-reads (fr)
    for i, r in enumerate(events):
        if not _is_read(r):
            continue
        addr = r.addr
        if addr in ambiguous:
            continue
        writes = co.get(addr, [])
        w = producer[addr].get(r.value)
        if w is None:
            if r.value != initial.get(addr, 0):
                raise ConsistencyViolation(
                    f"core {r.core} read out-of-thin-air value {r.value} "
                    f"from {addr:#x}"
                )
            # Read of the initial value: it precedes every write (fr).
            if writes:
                graph.add_edge(i, writes[0], "fr")
                loc_graphs[addr].add_edge(i, writes[0], "fr")
            continue
        if i != w:  # an RMW "reads from" the previous write, handled via co
            internal = events[w].core == r.core
            loc_graphs[addr].add_edge(w, i, "rf")
            if model is ConsistencyModel.SC or not internal:
                graph.add_edge(w, i, "rf")
        _, pos = co_pos[w]
        if pos + 1 < len(writes):
            graph.add_edge(i, writes[pos + 1], "fr")
            loc_graphs[addr].add_edge(i, writes[pos + 1], "fr")

    # ----- per-core program-order streams
    per_core: Dict[int, List[int]] = defaultdict(list)
    for i, r in enumerate(events):
        per_core[r.core].append(i)
    for stream in per_core.values():
        stream.sort(key=lambda i: events[i].po)

    # ----- uniproc: same-address program order vs rf/co/fr, per location
    # (model-independent; ambiguous locations keep their po-loc/co edges,
    # which need no value mapping and still catch FIFO drain inversions).
    for stream in per_core.values():
        last_at: Dict[int, int] = {}
        for i in stream:
            addr = events[i].addr
            if addr in last_at:
                loc_graphs[addr].add_edge(last_at[addr], i, "po-loc")
            last_at[addr] = i
    for addr, loc_graph in loc_graphs.items():
        cycle = loc_graph.find_cycle()
        if cycle is not None:
            raise ConsistencyViolation(
                f"per-location coherence (uniproc) violated at {addr:#x}:\n"
                + _render_cycle(events, {}, cycle)
            )

    # ----- fences (committed only), as hub nodes
    fence_nodes: Dict[int, FenceRecord] = {}
    fences_by_core: Dict[int, List[Tuple[int, FenceRecord]]] = defaultdict(list)
    next_node = n
    for f in recorder.fences:
        fence_nodes[next_node] = f
        fences_by_core[f.core].append((next_node, f))
        next_node += 1

    # ----- model-specific preserved program order
    if model is ConsistencyModel.SC:
        for stream in per_core.values():
            for a, b in zip(stream, stream[1:]):
                graph.add_edge(a, b, "po")
    elif model is ConsistencyModel.TSO:
        for core, stream in per_core.items():
            # Chains generating ppo = po minus store->load:
            #   every read-ish event orders with its successor and with
            #   the next read-ish event; writes chain among write-ish
            #   events.  Transitive paths then yield exactly the po
            #   pairs that are not (store -> later load).
            reads = [i for i in stream if _is_read(events[i])]
            writes = [i for i in stream if _is_write_ish(events[i])]
            pos_of = {e: k for k, e in enumerate(stream)}
            for k, i in enumerate(stream[:-1]):
                if _is_read(events[i]):
                    graph.add_edge(i, stream[k + 1], "po")
            for a, b in zip(reads, reads[1:]):
                graph.add_edge(a, b, "po-rr")
            for a, b in zip(writes, writes[1:]):
                graph.add_edge(a, b, "po-ww")
            # StoreLoad-ordering fences restore the dropped edges.
            for node, f in fences_by_core[core]:
                if not f.kind.orders_store_load:
                    continue
                before = [i for i in writes if events[i].po < f.po]
                after = [i for i in reads if events[i].po > f.po]
                if before:
                    graph.add_edge(before[-1], node, "fence")
                if after:
                    graph.add_edge(node, after[0], "fence")
    elif model is ConsistencyModel.RMO:
        for core, stream in per_core.items():
            # Only fences and atomics order; each fence is a hub between
            # its before/after access classes, each atomic a full
            # barrier hub.
            for node, f in fences_by_core[core]:
                pairs = _fence_pairs(f.kind)
                before_w = any(bw for bw, _ in pairs)
                before_r = any(not bw for bw, _ in pairs)
                after_w = any(aw for _, aw in pairs)
                after_r = any(not aw for _, aw in pairs)
                for i in stream:
                    r = events[i]
                    if r.po < f.po:
                        if ((before_w and _is_write_ish(r))
                                or (before_r and _is_read(r))):
                            graph.add_edge(i, node, "fence")
                    elif ((after_w and _is_write_ish(r))
                            or (after_r and _is_read(r))):
                        graph.add_edge(node, i, "fence")
            for m in stream:
                if events[m].kind is not AccessKind.RMW:
                    continue
                for i in stream:
                    if events[i].po < events[m].po:
                        graph.add_edge(i, m, "atomic")
                    elif events[i].po > events[m].po:
                        graph.add_edge(m, i, "atomic")
    else:  # pragma: no cover - new models must define their axioms here
        raise ValueError(f"no ordering axioms defined for model {model}")

    cycle = graph.find_cycle()
    if cycle is not None:
        raise ConsistencyViolation(
            f"{model.value.upper()} ordering violated: cycle of "
            f"{len(cycle)} edge(s) in po|rf|co|fr:\n"
            + _render_cycle(events, fence_nodes, cycle)
        )
    edges = graph.edges + sum(g.edges for g in loc_graphs.values())
    return OrderingReport(
        model=model,
        events=n,
        edges=edges,
        locations_skipped=len(ambiguous),
    )

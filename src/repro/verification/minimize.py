"""Shared delta-debugging engine: greedy fixpoint minimization under a
simulation budget.

Two very different searches in this package are the same algorithm run
in opposite directions:

* the fuzzer's **shrinker** (:func:`repro.verification.fuzz.shrink_case`)
  minimizes a *failing* case downward -- drop threads and ops, keep any
  reduction that still violates;
* the fence **synthesizer** (:mod:`repro.verification.synth`) minimizes
  a *sufficient fence set* -- start from full fencing at every candidate
  point (provably sufficient), drop or weaken fences, keep any reduction
  that still restores the target model.

Both are a greedy fixpoint over edit passes with an oracle deciding
whether an edited state is still "interesting", and both must respect a
hard simulation budget: the oracle is the expensive part (each query is
one or more full simulations), so the cap is enforced *at the oracle*,
uniformly, not per-pass.  :func:`minimize` is that shared loop;
:class:`Budget` is the shared cap.

The engine is deliberately oracle-polarity-agnostic: ``keep`` returns
the adopted state (possibly adjusted -- the shrinker reskews timing, the
synthesizer never adjusts) or ``None`` to reject.  Confirmation retries
(the shrinker's skew-retry, the synthesizer's extra timing sweeps)
belong inside ``keep``; the engine only walks edits.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, TypeVar

State = TypeVar("State")

#: One candidate edit: applied to the *current* state (which may have
#: changed since the pass generated it), returning the edited state or
#: ``None`` when the edit no longer applies (e.g. the index it targeted
#: was already dropped by an earlier adopted edit).
Edit = Callable[[State], Optional[State]]

#: One pass: generates the edits to try against the state it was given.
#: Passes that delete by index should yield edits in *reverse* index
#: order so earlier adoptions keep later indices valid.
Pass = Callable[[State], Iterable[Edit]]

#: The oracle: ``keep(candidate)`` returns the state to adopt (usually
#: the candidate itself, possibly adjusted) or ``None`` to reject it.
Keep = Callable[[State], Optional[State]]


class Budget:
    """A hard cap on oracle queries (simulations), spent one at a time.

    The fuzzer's original shrinker enforced its cap unevenly: the
    op-drop pass checked ``runs > max_runs`` (off by one -- the cap
    could be exceeded before the check fired) and the thread-drop pass
    never checked at all, so a hostile case could overrun the simulation
    budget by a whole pass.  Centralizing the cap here makes every
    consumer pay before it runs: :meth:`spend` returns ``False`` --
    without counting -- once the budget is gone, so a query that was
    not allowed is a query that did not happen.
    """

    def __init__(self, max_runs: int) -> None:
        if max_runs < 0:
            raise ValueError(f"max_runs must be >= 0, got {max_runs}")
        self.max_runs = max_runs
        self.runs = 0

    @property
    def exhausted(self) -> bool:
        return self.runs >= self.max_runs

    def spend(self, n: int = 1) -> bool:
        """Reserve ``n`` oracle queries; False (and no charge) if the
        remaining budget cannot cover them."""
        if self.runs + n > self.max_runs:
            return False
        self.runs += n
        return True


def minimize(state: State, passes: Sequence[Pass], keep: Keep,
             budget: Budget) -> State:
    """Greedy fixpoint minimization of ``state`` under ``budget``.

    Repeatedly runs each pass over the current state, applying every
    edit it generates and adopting any result ``keep`` accepts, until a
    full sweep of all passes adopts nothing (fixpoint) or the budget is
    exhausted.  The budget is checked before every edit -- ``keep``
    implementations spend it via :meth:`Budget.spend` and must treat a
    refused spend as a rejection, so the cap holds uniformly across
    passes (this is the fix for the shrinker's uneven enforcement).
    """
    changed = True
    while changed and not budget.exhausted:
        changed = False
        for edit_pass in passes:
            for edit in edit_pass(state):
                if budget.exhausted:
                    return state
                candidate = edit(state)
                if candidate is None:
                    continue
                adopted = keep(candidate)
                if adopted is not None:
                    state = adopted
                    changed = True
    return state

"""Execution recording at the point of global visibility (L1 apply).

The recorder hooks every L1's ``access_listener`` and buffers accesses
made *speculatively*: they enter the committed log only when the episode
commits, and are discarded on rollback -- so the final log contains
exactly the architectural execution, in per-location coherence order
(apply order under a single-writer protocol).

Besides the globally visible accesses, the recorder captures the
**per-core program-order stream** needed by the per-model ordering
checker (:mod:`repro.verification.ordering`):

* every memory access carries ``po``, the issuing core's program-order
  index, assigned by the core at issue time (L1 apply may reorder
  records in time; ``po`` recovers program order);
* store-buffer-forwarded loads -- which never reach the L1 -- are
  recorded too, tagged ``forwarded=True``, via the L1's
  ``forward_listener`` hook;
* fences are recorded as :class:`FenceRecord` entries in a parallel
  stream (they are not memory accesses, but the RMO/TSO axioms need
  their program-order positions).

Speculative records (accesses and fences alike) are buffered per core
and committed or discarded with the episode.  Records still pending
when a run ends are reported through :attr:`pending_count` -- a nonzero
value means the simulation stopped mid-episode and the log is not a
complete architectural execution.
"""

from __future__ import annotations

import enum
import itertools
from typing import Dict, List, NamedTuple, Optional

from repro.isa.instructions import FenceKind


class AccessKind(enum.Enum):
    READ = "read"
    WRITE = "write"
    RMW = "rmw"


class AccessRecord(NamedTuple):
    seq: int            #: global apply order tiebreaker
    cycle: int
    core: int
    kind: AccessKind
    addr: int
    value: int          #: value read (READ/RMW) or written (WRITE)
    written: Optional[int]  #: value written by an RMW (None if CAS failed)
    speculative: bool   #: applied inside a (later committed) episode
    po: int = -1        #: issuing core's program-order index (-1: unknown)
    forwarded: bool = False  #: load served by store-buffer forwarding

    @property
    def is_write(self) -> bool:
        return (self.kind is AccessKind.WRITE
                or (self.kind is AccessKind.RMW and self.written is not None))

    @property
    def is_read(self) -> bool:
        return self.kind is not AccessKind.WRITE

    @property
    def written_value(self) -> Optional[int]:
        if self.kind is AccessKind.WRITE:
            return self.value
        return self.written


class FenceRecord(NamedTuple):
    """One retired fence in a core's program-order stream."""

    core: int
    po: int
    kind: FenceKind
    speculative: bool


class ExecutionRecorder:
    """Collects the committed architectural access log of a run."""

    def __init__(self) -> None:
        self._seq = itertools.count()
        self.committed: List[AccessRecord] = []
        self.fences: List[FenceRecord] = []
        self._pending: Dict[int, List[AccessRecord]] = {}
        self._pending_fences: Dict[int, List[FenceRecord]] = {}
        self.discarded = 0
        self._sorted_cache: Optional[List[AccessRecord]] = None
        #: Number of full log sorts performed (the cache makes this 1 for
        #: an entire check_execution pass; tests assert it).
        self.sorts_performed = 0

    # -------------------------------------------------------------- hooks

    def on_access(self, cycle: int, core: int, kind: AccessKind, addr: int,
                  value: int, written: Optional[int], speculative: bool,
                  po: int = -1, forwarded: bool = False) -> None:
        record = AccessRecord(next(self._seq), cycle, core, kind, addr,
                              value, written, speculative, po, forwarded)
        if speculative:
            self._pending.setdefault(core, []).append(record)
        else:
            self.committed.append(record)
            self._sorted_cache = None

    def on_fence(self, core: int, po: int, kind: FenceKind,
                 speculative: bool) -> None:
        record = FenceRecord(core, po, kind, speculative)
        if speculative:
            self._pending_fences.setdefault(core, []).append(record)
        else:
            self.fences.append(record)

    def on_commit(self, core: int) -> None:
        """The episode committed: its accesses become architectural."""
        pending = self._pending.pop(core, None)
        if pending:
            self.committed.extend(pending)
            self._sorted_cache = None
        self.fences.extend(self._pending_fences.pop(core, []))

    def on_rollback(self, core: int) -> None:
        """The episode aborted: its accesses never happened."""
        self.discarded += len(self._pending.pop(core, []))
        self._pending_fences.pop(core, None)

    # ------------------------------------------------------------- attach

    @classmethod
    def attach(cls, system) -> "ExecutionRecorder":
        """Instrument every L1 of a System (before ``run``)."""
        recorder = cls()
        for l1 in system.l1s:
            recorder._instrument(l1, system.sim)
        return recorder

    def _instrument(self, l1, sim) -> None:
        core_id = l1.node_id

        def listener(kind, addr, value, written, speculative, po=-1):
            self.on_access(sim.now, core_id, kind, addr, value, written,
                           speculative, po)

        def forward_listener(addr, value, speculative, po):
            self.on_access(sim.now, core_id, AccessKind.READ, addr, value,
                           None, speculative, po, forwarded=True)

        def fence_listener(kind, po, speculative):
            self.on_fence(core_id, po, kind, speculative)

        l1.access_listener = listener
        l1.forward_listener = forward_listener
        l1.fence_listener = fence_listener

        original_commit = l1.commit_speculation
        original_rollback = l1.rollback_speculation

        def commit_hook():
            self.on_commit(core_id)
            original_commit()

        def rollback_hook(exclude=None):
            self.on_rollback(core_id)
            original_rollback(exclude=exclude)

        l1.commit_speculation = commit_hook
        l1.rollback_speculation = rollback_hook

    # ------------------------------------------------------------- views

    def sorted_log(self) -> List[AccessRecord]:
        """Committed accesses in global apply order (cached; the cache is
        invalidated whenever the committed log grows)."""
        if self._sorted_cache is None:
            self._sorted_cache = sorted(self.committed,
                                        key=lambda r: (r.cycle, r.seq))
            self.sorts_performed += 1
        return self._sorted_cache

    def writes_to(self, addr: int) -> List[AccessRecord]:
        return [r for r in self.sorted_log() if r.addr == addr and r.is_write]

    @property
    def pending_count(self) -> int:
        """Speculative records neither committed nor discarded.

        Nonzero after a run means the simulation ended mid-episode (the
        recorded log is not a complete architectural execution);
        :func:`repro.verification.checker.check_execution` raises on it.
        """
        return (sum(len(v) for v in self._pending.values())
                + sum(len(v) for v in self._pending_fences.values()))

    def __len__(self) -> int:
        return len(self.committed)

"""Execution recording at the point of global visibility (L1 apply).

The recorder hooks every L1's ``access_listener`` and buffers accesses
made *speculatively*: they enter the committed log only when the episode
commits, and are discarded on rollback -- so the final log contains
exactly the architectural execution, in per-location coherence order
(apply order under a single-writer protocol).

Store-buffer-forwarded loads never reach the L1 and are therefore not
recorded; the checker's axioms apply to the recorded (globally visible)
accesses.
"""

from __future__ import annotations

import enum
import itertools
from typing import List, NamedTuple, Optional


class AccessKind(enum.Enum):
    READ = "read"
    WRITE = "write"
    RMW = "rmw"


class AccessRecord(NamedTuple):
    seq: int            #: global apply order tiebreaker
    cycle: int
    core: int
    kind: AccessKind
    addr: int
    value: int          #: value read (READ/RMW) or written (WRITE)
    written: Optional[int]  #: value written by an RMW (None if CAS failed)
    speculative: bool   #: applied inside a (later committed) episode

    @property
    def is_write(self) -> bool:
        return (self.kind is AccessKind.WRITE
                or (self.kind is AccessKind.RMW and self.written is not None))

    @property
    def written_value(self) -> Optional[int]:
        if self.kind is AccessKind.WRITE:
            return self.value
        return self.written


class ExecutionRecorder:
    """Collects the committed architectural access log of a run."""

    def __init__(self) -> None:
        self._seq = itertools.count()
        self.committed: List[AccessRecord] = []
        self._pending: dict = {}   # core -> speculative records
        self.discarded = 0

    # -------------------------------------------------------------- hooks

    def on_access(self, cycle: int, core: int, kind: AccessKind, addr: int,
                  value: int, written: Optional[int], speculative: bool) -> None:
        record = AccessRecord(next(self._seq), cycle, core, kind, addr,
                              value, written, speculative)
        if speculative:
            self._pending.setdefault(core, []).append(record)
        else:
            self.committed.append(record)

    def on_commit(self, core: int) -> None:
        """The episode committed: its accesses become architectural."""
        self.committed.extend(self._pending.pop(core, []))

    def on_rollback(self, core: int) -> None:
        """The episode aborted: its accesses never happened."""
        self.discarded += len(self._pending.pop(core, []))

    # ------------------------------------------------------------- attach

    @classmethod
    def attach(cls, system) -> "ExecutionRecorder":
        """Instrument every L1 of a System (before ``run``)."""
        recorder = cls()
        for l1 in system.l1s:
            recorder._instrument(l1, system.sim)
        return recorder

    def _instrument(self, l1, sim) -> None:
        core_id = l1.node_id

        def listener(kind, addr, value, written, speculative):
            self.on_access(sim.now, core_id, kind, addr, value, written,
                           speculative)

        l1.access_listener = listener

        original_commit = l1.commit_speculation
        original_rollback = l1.rollback_speculation

        def commit_hook():
            self.on_commit(core_id)
            original_commit()

        def rollback_hook(exclude=None):
            self.on_rollback(core_id)
            original_rollback(exclude=exclude)

        l1.commit_speculation = commit_hook
        l1.rollback_speculation = rollback_hook

    # ------------------------------------------------------------- views

    def sorted_log(self) -> List[AccessRecord]:
        """Committed accesses in global apply order."""
        return sorted(self.committed, key=lambda r: (r.cycle, r.seq))

    def writes_to(self, addr: int) -> List[AccessRecord]:
        return [r for r in self.sorted_log() if r.addr == addr and r.is_write]

    def __len__(self) -> int:
        return len(self.committed)

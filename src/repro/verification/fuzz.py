"""Consistency fuzzing: random litmus programs, per-model checking,
failure minimization.

The fuzzer closes the loop the paper's correctness argument needs: the
speculation machinery (InvisiFence-style invisible buffering, rollback,
ordering-stall elision) must be *unobservable* -- every execution it
produces must still satisfy the configured consistency model's axioms.
So we generate small random multi-threaded programs with globally
unique written values (:func:`repro.workloads.randmix.random_litmus_ops`),
run each under a sweep of model x speculation-mode x timing-skew
configurations with the :class:`~repro.verification.recorder.ExecutionRecorder`
attached, and feed the committed log to the per-model ordering checker
(:mod:`repro.verification.ordering`) plus the coherence-level axioms.

On a violation the offending case is **shrunk** -- greedy fixpoint of
drop-thread and drop-op passes over the litmus IR, keeping any
reduction that still violates -- and can be emitted as a standalone
reproducer script, so a fuzz failure arrives as a six-line litmus test
rather than a 60-op haystack.

Deliberate bug injection (``inject=`` in :func:`run_case`) wires in two
test-only defects to prove the pipeline actually catches bugs:

* ``"sc-load-no-drain"`` -- SC loads no longer wait for the store
  buffer to drain, silently giving SC machines TSO behaviour;
* ``"stale-forward"`` -- store-buffer forwarding returns the *oldest*
  matching entry instead of the youngest.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from itertools import product
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.config import (
    CacheConfig,
    ConsistencyModel,
    CoreConfig,
    InterconnectConfig,
    MemoryConfig,
    SpeculationConfig,
    SpeculationMode,
    SystemConfig,
)
from repro.faults.plan import FaultPlan
from repro.faults.watchdog import Watchdog
from repro.sim.engine import SimulationError
from repro.system import System
from repro.verification.checker import ConsistencyViolation, check_execution
from repro.verification.minimize import Budget, minimize
from repro.verification.recorder import ExecutionRecorder
from repro.workloads.randmix import (
    MemOp,
    compile_litmus_ops,
    litmus_instruction_count,
    random_litmus_ops,
)

#: Bug-injection knobs accepted by :func:`run_case`.
INJECTIONS = ("sc-load-no-drain", "stale-forward")

#: Simulated-time cap for fuzz runs: litmus-sized programs finish in a
#: few thousand cycles, so this is pure deadlock insurance.
FUZZ_MAX_CYCLES = 2_000_000

#: Speculation modes the sweep exercises: off, passive InvisiFence
#: (speculate on demand at ordering stalls), and continuous.
SWEEP_SPECS = (SpeculationMode.NONE, SpeculationMode.ON_DEMAND,
               SpeculationMode.CONTINUOUS)

#: Per-thread EXEC skews the sweep draws from; staggering issue times
#: steers the simulator into different interleavings of the same program.
SKEW_CHOICES = (0, 3, 11, 27)


def fuzz_config(n_threads: int, model: ConsistencyModel,
                spec: SpeculationMode) -> SystemConfig:
    """A small, fast machine for fuzz runs (mirrors the test config)."""
    return SystemConfig(
        n_cores=n_threads,
        l1=CacheConfig(size_bytes=4 * 1024, assoc=4, block_bytes=64,
                       hit_latency=2),
        memory=MemoryConfig(l2_hit_latency=8, dram_latency=40,
                            directory_latency=2),
        interconnect=InterconnectConfig(link_latency=3),
        core=CoreConfig(consistency=model, store_buffer_entries=8),
        speculation=SpeculationConfig(mode=spec),
    )


@dataclass(frozen=True)
class FuzzCase:
    """One runnable fuzz input: litmus IR + machine configuration."""

    threads: Tuple[Tuple[MemOp, ...], ...]
    model: ConsistencyModel
    spec: SpeculationMode
    skews: Tuple[int, ...] = ()
    seed: int = 0                     #: generator seed (provenance only)
    inject: Optional[str] = None      #: bug-injection knob, test-only
    #: optional deterministic fault scenario (see repro.faults); shrunk
    #: cases and reproducers carry it unchanged, so a failure found
    #: under faults is replayed under the same faults
    fault_plan: Optional[FaultPlan] = None
    #: trace-compiled execution (superblock fusion) knob; True is the
    #: production default, False pins the per-instruction dispatch so
    #: the sweep can difference the two
    superblocks: bool = True

    @property
    def n_threads(self) -> int:
        return len(self.threads)

    def instruction_count(self) -> int:
        return litmus_instruction_count(self.threads)

    def describe(self) -> str:
        return (f"seed={self.seed} model={self.model.value} "
                f"spec={self.spec.value} threads={self.n_threads} "
                f"instructions={self.instruction_count()}"
                + (f" inject={self.inject}" if self.inject else "")
                + ("" if self.superblocks else " superblocks=off")
                + (f" faults[{self.fault_plan.describe()}]"
                   if self.fault_plan is not None else ""))


@dataclass
class FuzzFailure:
    """A violating case, its shrunk form, and the checker's complaint."""

    case: FuzzCase
    shrunk: FuzzCase
    message: str


@dataclass
class FuzzReport:
    """Outcome of a sweep."""

    cases_run: int = 0
    checks_passed: int = 0
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.failures


def _apply_injection(system: System, inject: str) -> None:
    if inject == "sc-load-no-drain":
        for core in system.cores:
            core._load_needs_drain = False
    elif inject == "stale-forward":
        for core in system.cores:
            sb = core.sb

            def oldest(addr: int, _sb=sb) -> Optional[int]:
                for entry in _sb:
                    if entry.addr == addr:
                        return entry.value
                return None

            sb.forward_value = oldest
    else:
        raise ValueError(f"unknown injection {inject!r}; "
                         f"one of {INJECTIONS}")


def execute_case(case: FuzzCase) -> Tuple[System, Dict[str, int]]:
    """Compile, simulate and check one case; return the live system too.

    Callers that only need the checker's report use :func:`run_case`;
    E12 reads the system's fault/retry counters as well.  Fault-injected
    cases run under a liveness :class:`~repro.faults.Watchdog`, and every
    fuzz execution is capped at :data:`FUZZ_MAX_CYCLES` simulated cycles,
    so a hang becomes a diagnosable exception.
    """
    programs = compile_litmus_ops(case.threads, skews=case.skews or None)
    config = fuzz_config(case.n_threads, case.model, case.spec)
    if not case.superblocks:
        config = config.with_superblocks(False)
    system = System(config, programs, fault_plan=case.fault_plan)
    if case.inject:
        _apply_injection(system, case.inject)
    recorder = ExecutionRecorder.attach(system)
    watchdog = Watchdog(system) if system.fault_plan is not None else None
    system.run(check_invariants=True, max_cycles=FUZZ_MAX_CYCLES,
               watchdog=watchdog)
    report = check_execution(recorder, model=case.model)
    if report["locations_skipped"] or report.get("ordering_locations_skipped"):
        raise RuntimeError(
            "fuzz generator produced duplicate written values; coherence "
            f"and rf checks would be vacuous: {case.describe()}"
        )
    return system, report


def run_case(case: FuzzCase) -> Dict[str, int]:
    """Compile, simulate and check one case against its own model.

    Returns the checker's report on success; raises
    :class:`ConsistencyViolation` when the recorded execution breaks the
    model's axioms, and :class:`RuntimeError` if the generator's
    unique-value guarantee did not hold (the check would be vacuous).
    """
    _, report = execute_case(case)
    return report


def _violation_of(case: FuzzCase) -> Optional[str]:
    """The violation message for ``case``, or None if it checks clean."""
    try:
        run_case(case)
        return None
    except ConsistencyViolation as exc:
        return str(exc)


# ------------------------------------------------------------ shrinking

def _drop_thread(case: FuzzCase, index: int) -> FuzzCase:
    threads = case.threads[:index] + case.threads[index + 1:]
    skews = (case.skews[:index] + case.skews[index + 1:]
             if case.skews else case.skews)
    return replace(case, threads=threads, skews=skews)


def _drop_op(case: FuzzCase, tid: int, opi: int) -> FuzzCase:
    ops = case.threads[tid]
    threads = (case.threads[:tid]
               + (ops[:opi] + ops[opi + 1:],)
               + case.threads[tid + 1:])
    return replace(case, threads=threads)


def shrink_case(case: FuzzCase, max_runs: int = 600,
                skew_retries: int = 3) -> FuzzCase:
    """Greedy fixpoint minimization of a violating case.

    Repeatedly tries dropping whole threads, then single ops, keeping
    any reduction that still violates the model; stops at a fixpoint or
    after ``max_runs`` simulations (the cap is enforced in the oracle
    itself, so no pass can overrun it).  Dropping an op perturbs
    timing, so a reduction that hides the violation under the current
    skews is retried under ``skew_retries`` alternative skew sets
    before being rejected -- the difference between shrinking to a
    litmus-sized reproducer and stalling on timing noise.  The litmus
    IR keeps written values globally unique under any subset, so every
    candidate stays fully checkable.

    Built on the shared delta-debugging engine
    (:func:`repro.verification.minimize.minimize`); the fence
    synthesizer runs the same engine in the opposite direction.
    """
    rng = random.Random(case.seed)
    budget = Budget(max_runs)

    def violates(candidate: FuzzCase) -> bool:
        # The budget is spent here, uniformly for every pass: a query
        # the cap refuses is a query that never runs.
        if not budget.spend():
            return False
        try:
            return _violation_of(candidate) is not None
        except SimulationError:
            # A reduction that deadlocks/times out (possible under a
            # hostile fault plan, where timing shifts with every dropped
            # op) is rejected, not kept: the reproducer must replay the
            # *consistency* violation.
            return False

    def still_fails(candidate: FuzzCase) -> Optional[FuzzCase]:
        """The candidate (possibly reskewed) if it still violates."""
        if violates(candidate):
            return candidate
        for _ in range(skew_retries):
            reskewed = replace(candidate, skews=tuple(
                rng.choice(SKEW_CHOICES)
                for _ in range(candidate.n_threads)))
            if violates(reskewed):
                return reskewed
        return None

    def drop_thread_pass(state: FuzzCase):
        for tid in range(len(state.threads) - 1, -1, -1):
            def edit(s: FuzzCase, tid=tid) -> Optional[FuzzCase]:
                if len(s.threads) <= 1 or tid >= len(s.threads):
                    return None
                return _drop_thread(s, tid)
            yield edit

    def drop_op_pass(state: FuzzCase):
        for tid in range(len(state.threads) - 1, -1, -1):
            for opi in range(len(state.threads[tid]) - 1, -1, -1):
                def edit(s: FuzzCase, tid=tid, opi=opi) -> Optional[FuzzCase]:
                    if tid >= len(s.threads) or opi >= len(s.threads[tid]):
                        return None
                    return _drop_op(s, tid, opi)
                yield edit

    return minimize(case, (drop_thread_pass, drop_op_pass),
                    still_fails, budget)


# ---------------------------------------------------------------- sweep

def fuzz_sweep(
    n_programs: int = 10,
    seed: int = 0,
    n_threads: int = 2,
    ops_per_thread: int = 8,
    models: Sequence[ConsistencyModel] = tuple(ConsistencyModel),
    specs: Sequence[SpeculationMode] = SWEEP_SPECS,
    skew_variants: int = 2,
    inject: Optional[str] = None,
    shrink: bool = True,
    stop_after: Optional[int] = 1,
    fault_plans: Sequence[Optional[FaultPlan]] = (None,),
    superblocks_axis: Sequence[bool] = (True,),
) -> FuzzReport:
    """Run the full fuzz matrix: programs x models x specs x skews.

    Each of the ``n_programs`` random programs is run under every
    (model, speculation-mode) pair, ``skew_variants`` timing skews, and
    every entry of the ``fault_plans`` axis (default: just the
    fault-free machine), checked against the *same* model the machine
    was configured with.  ``superblocks_axis`` optionally widens the
    matrix across trace-compiled execution on/off (default: on only,
    the production configuration).  Violating cases are shrunk (when
    ``shrink``) with the fault plan held fixed; ``stop_after`` bounds
    how many failures are collected before returning early (None: all).
    """
    rng = random.Random(seed)
    report = FuzzReport()
    for prog_index in range(n_programs):
        prog_seed = rng.randrange(2 ** 31)
        threads = random_litmus_ops(n_threads, ops_per_thread,
                                    seed=prog_seed)
        ir = tuple(tuple(ops) for ops in threads)
        skew_sets = [tuple(rng.choice(SKEW_CHOICES)
                           for _ in range(n_threads))
                     for _ in range(skew_variants)]
        for model, spec, skews, plan, fuse in product(
                models, specs, skew_sets, fault_plans, superblocks_axis):
            case = FuzzCase(threads=ir, model=model, spec=spec,
                            skews=skews, seed=prog_seed,
                            inject=inject, fault_plan=plan,
                            superblocks=fuse)
            report.cases_run += 1
            message = _violation_of(case)
            if message is None:
                report.checks_passed += 1
                continue
            shrunk = shrink_case(case) if shrink else case
            report.failures.append(
                FuzzFailure(case=case, shrunk=shrunk, message=message))
            if (stop_after is not None
                    and len(report.failures) >= stop_after):
                return report
    return report


# ----------------------------------------------------------- reproducer

def reproducer_script(case: FuzzCase) -> str:
    """A standalone script that replays ``case`` and exits 1 on violation.

    Written next to a fuzz failure so the bug can be replayed (and
    bisected) without the fuzzing machinery:
    ``PYTHONPATH=src python repro_<seed>.py``.
    """
    lines = [
        '"""Auto-generated consistency-fuzz reproducer.',
        "",
        f"Case: {case.describe()}",
        '"""',
        "",
        "import sys",
        "",
        "from repro.isa.instructions import FenceKind",
        "from repro.verification.checker import ConsistencyViolation",
        "from repro.verification.fuzz import FuzzCase, run_case",
        "from repro.sim.config import ConsistencyModel, SpeculationMode",
        "from repro.workloads.randmix import MemOp",
    ]
    if case.fault_plan is not None:
        lines.append("from repro.faults import FaultPlan")
    lines += [
        "",
        "THREADS = (",
    ]
    for ops in case.threads:
        lines.append("    (")
        for op in ops:
            lines.append(
                f"        MemOp({op.kind!r}, addr={op.addr:#x}, "
                f"value={op.value}, fence=FenceKind.{op.fence.name}, "
                f"cycles={op.cycles}),"
            )
        lines.append("    ),")
    lines += [
        ")",
        "",
        "case = FuzzCase(",
        "    threads=THREADS,",
        f"    model=ConsistencyModel.{case.model.name},",
        f"    spec=SpeculationMode.{case.spec.name},",
        f"    skews={tuple(case.skews)!r},",
        f"    seed={case.seed},",
        f"    inject={case.inject!r},",
        f"    superblocks={case.superblocks!r},",
    ]
    if case.fault_plan is not None:
        # The dataclass repr is eval-able, so the plan replays exactly.
        lines.append(f"    fault_plan={case.fault_plan!r},")
    lines += [
        ")",
        "",
        "try:",
        "    report = run_case(case)",
        "except ConsistencyViolation as exc:",
        "    print('consistency violation reproduced:')",
        "    print(exc)",
        "    sys.exit(1)",
        "print('no violation:', report)",
        "",
    ]
    return "\n".join(lines)


def write_reproducer(case: FuzzCase, path: str) -> str:
    """Write :func:`reproducer_script` for ``case`` to ``path``."""
    text = reproducer_script(case)
    with open(path, "w") as handle:
        handle.write(text)
    return path

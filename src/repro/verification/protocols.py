"""Post-run safety checkers for the distributed-protocol workloads.

Companion to :mod:`repro.verification.ordering`: where the ordering
checker validates consistency *axioms* over a recorded execution, these
validate protocol-level *safety properties* over the architectural
outcome of a chaos run (:class:`~repro.system.SystemResult`) -- the
final memory image plus the per-core crash record:

* **election safety** -- at most one leader per term, and every observer
  that saw a leader saw *the* leader;
* **gossip convergence** -- every live core's rumor set equals the union
  of all initial rumors (crashed cores may hold any monotone subset);
* **log agreement** -- no two cores commit different values at the same
  log index, and every committed claim matches the log's content.

"Live" means not crash-stopped by the run's
:class:`~repro.faults.NodeFaultPlan`; a *paused* core resumes, halts,
and is held to the same obligations as an undisturbed one.  Each checker
returns a :class:`ProtocolReport` on success and raises
:class:`ProtocolViolation` (an ``AssertionError``, so harness validation
treats it like any workload check failure) naming every violated
obligation otherwise.

The checkers take explicit layout addresses; the workload factories in
:mod:`repro.workloads.protocols` bind them via each workload's
``validate`` hook and expose them as ``workload.protocol_params`` for
direct use in tests and experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple


class ProtocolViolation(AssertionError):
    """A chaos run broke a protocol safety property."""


@dataclass(frozen=True)
class ProtocolReport:
    """Outcome of one protocol property check (no violation found)."""

    workload: str
    prop: str      #: the property that was checked (e.g. "election-safety")
    checked: int   #: obligations examined (terms / cores / log slots)
    notes: Tuple[str, ...] = ()  #: benign observations (e.g. leaderless terms)


def _live_ids(result) -> List[int]:
    return [c.core_id for c in result.cores if not getattr(c, "crashed", False)]


def _finish(workload: str, prop: str, checked: int,
            problems: List[str], notes: List[str]) -> ProtocolReport:
    if problems:
        raise ProtocolViolation(
            f"{workload}: {prop} violated ({len(problems)} problem(s)):\n  "
            + "\n  ".join(problems))
    return ProtocolReport(workload, prop, checked, tuple(notes))


def check_election_safety(result, *, terms: int, n_threads: int,
                          claims: Sequence[int], bully: Sequence[int],
                          wins: Sequence[int], views: Sequence[int],
                          ) -> ProtocolReport:
    """At most one leader per term; observers only ever saw that leader.

    ``claims[t]``/``bully[t]`` are the per-term claim word (CAS target,
    winner id + 1) and candidacy bitmap; ``wins[tid]``/``views[tid]``
    are per-core arrays of ``terms`` words (win record / observed
    leader).  A crashed core's win record or view may be lost in its
    frozen store buffer -- loss is legal, a *conflicting* record is not.
    """
    problems: List[str] = []
    notes: List[str] = []
    live = set(_live_ids(result))
    for t in range(terms):
        claim = result.read_word(claims[t])
        if not 0 <= claim <= n_threads:
            problems.append(f"term {t}: claim word holds {claim}, "
                            f"not a core id in [0, {n_threads}]")
            continue
        winners = [tid for tid in range(n_threads)
                   if result.read_word(wins[tid] + 8 * t) == 1]
        if len(winners) > 1:
            problems.append(f"term {t}: {len(winners)} cores recorded a "
                            f"win ({winners}) -- split brain")
        for tid in winners:
            if claim != tid + 1:
                problems.append(
                    f"term {t}: core {tid} recorded a win but the claim "
                    f"word names {claim - 1 if claim else 'nobody'}")
        if claim and (claim - 1) in live and (claim - 1) not in winners:
            problems.append(
                f"term {t}: live core {claim - 1} holds the claim but "
                "never recorded its win (lost store on a live core)")
        if claim == 0:
            notes.append(f"term {t}: leaderless (all candidates deferred "
                         "or died)")
        bits = result.read_word(bully[t])
        for tid in live:
            if not bits & (1 << tid):
                problems.append(f"term {t}: live core {tid} never "
                                "announced candidacy (lost fetch_add)")
        for tid in range(n_threads):
            view = result.read_word(views[tid] + 8 * t)
            if view not in (0, claim):
                problems.append(
                    f"term {t}: core {tid} observed leader "
                    f"{view - 1 if view else 'nobody'} but the claim "
                    f"word names {claim - 1 if claim else 'nobody'}")
    return _finish("leader-election", "election-safety", terms,
                   problems, notes)


def check_gossip_convergence(result, *, n_threads: int, rounds: int,
                             known: Sequence[int], beats: Sequence[int],
                             rumors: Sequence[int]) -> ProtocolReport:
    """Every live core's final rumor set is the union of all initial rumors.

    ``known[tid]`` is each core's single-writer rumor-set word (seeded
    with ``rumors[tid]``), ``beats[tid]`` its per-round heartbeat
    counter.  Crashed cores may hold any monotone subset of the union;
    bits from outside the union are out-of-thin-air for everyone.
    """
    problems: List[str] = []
    notes: List[str] = []
    union = 0
    for rumor in rumors:
        union |= rumor
    live = set(_live_ids(result))
    for tid in range(n_threads):
        value = result.read_word(known[tid])
        pulse = result.read_word(beats[tid])
        if value | union != union:
            problems.append(f"core {tid}: rumor set {value:#x} holds bits "
                            f"outside the union {union:#x} (out of thin air)")
        if tid in live:
            if value != union:
                problems.append(
                    f"core {tid}: live but converged to {value:#x}, "
                    f"expected the full union {union:#x}")
            if pulse != rounds:
                problems.append(f"core {tid}: live but only {pulse} of "
                                f"{rounds} heartbeats are visible")
        else:
            if value & rumors[tid] != rumors[tid]:
                problems.append(f"core {tid}: own initial rumor vanished "
                                f"from {value:#x}")
            if pulse > rounds:
                problems.append(f"core {tid}: {pulse} heartbeats visible, "
                                f"more than the {rounds} rounds run")
            notes.append(f"core {tid}: crashed with rumor set {value:#x} "
                         f"after {pulse} heartbeat(s)")
    return _finish("gossip", "gossip-convergence", n_threads,
                   problems, notes)


def check_log_agreement(result, *, n_threads: int, appends: int, slots: int,
                        log: int, journals: Sequence[int],
                        ncommits: Sequence[int]) -> ProtocolReport:
    """No two cores committed different values at the same log index.

    ``log`` is the shared ``slots``-word log array; ``journals[tid]``
    is each core's private array of ``appends`` (index + 1, value)
    pairs, with the value written first and the claim written last --
    both *after* the corresponding log store in program order, so the
    FIFO store buffer guarantees a visible claim implies a visible
    journal value and log write, even across a crash; ``ncommits[tid]``
    counts the core's committed appends.  Values encode their writer as
    ``(tid + 1) * 1000 + seq``.
    """
    problems: List[str] = []
    notes: List[str] = []
    live = set(_live_ids(result))
    claimed = {}  # log index -> (tid, value)
    for tid in range(n_threads):
        count = result.read_word(ncommits[tid])
        entries = []
        for k in range(appends):
            idxp = result.read_word(journals[tid] + 16 * k)
            value = result.read_word(journals[tid] + 16 * k + 8)
            if idxp == 0:
                continue
            entries.append(k)
            index = idxp - 1
            if not 0 <= index < slots:
                problems.append(f"core {tid}: claimed out-of-range log "
                                f"index {index}")
                continue
            if index in claimed:
                other_tid, other_value = claimed[index]
                problems.append(
                    f"log[{index}]: claimed by core {other_tid} "
                    f"(value {other_value}) AND core {tid} "
                    f"(value {value}) -- agreement broken")
                continue
            claimed[index] = (tid, value)
            actual = result.read_word(log + 8 * index)
            if actual != value:
                problems.append(
                    f"log[{index}]: core {tid} committed {value} but the "
                    f"log holds {actual}")
            if value // 1000 != tid + 1 or not 0 <= value % 1000 < appends:
                problems.append(f"core {tid}: journal value {value} is not "
                                f"from its own value space")
        if tid in live and count != len(entries):
            problems.append(f"core {tid}: live with {len(entries)} journal "
                            f"claim(s) but a commit count of {count}")
        if tid in live and count < appends:
            notes.append(f"core {tid}: gave up {appends - count} append(s) "
                         "(lock acquisition budget exhausted)")
    for index in range(slots):
        value = result.read_word(log + 8 * index)
        if value == 0:
            continue
        writer = value // 1000 - 1
        if not 0 <= writer < n_threads or not 0 <= value % 1000 < appends:
            problems.append(f"log[{index}]: malformed value {value}")
            continue
        if index not in claimed:
            if writer in live:
                problems.append(
                    f"log[{index}]: holds {value} from live core {writer} "
                    "with no matching journal claim")
            else:
                notes.append(f"log[{index}]: orphan write {value} from "
                             f"crashed core {writer} (claim lost with the "
                             "store buffer)")
    return _finish("replicated-log", "log-agreement",
                   slots + len(claimed), problems, notes)

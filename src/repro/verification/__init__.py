"""Post-hoc execution verification.

Records every memory access the L1s *apply* (the point of global
visibility) and checks consistency axioms over the recorded execution:

* **read provenance** -- every load returns a value some store actually
  wrote (or the initial value): no out-of-thin-air or torn values;
* **per-location coherence** -- each thread observes every location's
  writes in a single global order, never going backwards;
* **RMW atomicity** -- no write intervenes between an atomic's read and
  its write.

Because speculation rolls back by *discarding* L1 state, recorded
apply-order is exactly the coherence order -- so these checks hold for
speculative runs too, and would catch any bug where speculative values
leak or rollbacks corrupt data.
"""

from repro.verification.recorder import AccessRecord, ExecutionRecorder
from repro.verification.checker import (
    ConsistencyViolation,
    check_execution,
    check_per_location_coherence,
    check_read_provenance,
    check_rmw_atomicity,
)

__all__ = [
    "AccessRecord",
    "ExecutionRecorder",
    "ConsistencyViolation",
    "check_execution",
    "check_per_location_coherence",
    "check_read_provenance",
    "check_rmw_atomicity",
]

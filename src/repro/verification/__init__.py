"""Post-hoc execution verification.

Records every memory access the L1s *apply* (the point of global
visibility) plus each core's program-order stream -- including
store-buffer-forwarded loads and fences, tagged as such -- and checks
consistency axioms over the recorded execution:

* **read provenance** -- every load returns a value some store actually
  wrote (or the initial value): no out-of-thin-air or torn values;
* **per-location coherence** -- each thread observes every location's
  writes in a single global order, never going backwards;
* **RMW atomicity** -- no write intervenes between an atomic's read and
  its write;
* **forwarding sanity** -- a forwarded load returned its core's latest
  program-order-earlier buffered store;
* **per-model ordering** (:mod:`repro.verification.ordering`) -- the
  union of reads-from, coherence order, from-reads and the model's
  preserved program order (SC / TSO / RMO) is acyclic.

Because speculation rolls back by *discarding* L1 state, recorded
apply-order is exactly the coherence order -- so these checks hold for
speculative runs too, and would catch any bug where speculative values
leak or rollbacks corrupt data.

:mod:`repro.verification.fuzz` turns the checkers into a bug hunter:
seeded random litmus programs swept over model x speculation-mode x
timing skew, with greedy failure minimization and standalone
reproducer emission.

:mod:`repro.verification.synth` runs the same machinery forward:
automatic fence synthesis -- minimal fence sets restoring SC/TSO on
the RMO machine, searched with the shared delta-debugging engine
(:mod:`repro.verification.minimize`) against a two-layer oracle
(exhaustive axiomatic witnesses + machine sweeps).
"""

from repro.verification.recorder import (
    AccessRecord,
    ExecutionRecorder,
    FenceRecord,
)
from repro.verification.checker import (
    ConsistencyViolation,
    check_execution,
    check_forwarding,
    check_per_location_coherence,
    check_read_provenance,
    check_rmw_atomicity,
)
from repro.verification.minimize import Budget, minimize
from repro.verification.ordering import OrderingReport, check_model_ordering
from repro.verification.protocols import (
    ProtocolReport,
    ProtocolViolation,
    check_election_safety,
    check_gossip_convergence,
    check_log_agreement,
)
from repro.verification.synth import (
    OracleStats,
    SynthesisResult,
    dynamic_counterexample,
    enumerate_witness_logs,
    fence_cost,
    static_counterexample,
    synthesize_fences,
)
from repro.verification.fuzz import (
    FuzzCase,
    FuzzFailure,
    FuzzReport,
    fuzz_sweep,
    run_case,
    shrink_case,
    write_reproducer,
)

__all__ = [
    "AccessRecord",
    "ExecutionRecorder",
    "FenceRecord",
    "ConsistencyViolation",
    "check_execution",
    "check_forwarding",
    "check_per_location_coherence",
    "check_read_provenance",
    "check_rmw_atomicity",
    "OrderingReport",
    "check_model_ordering",
    "ProtocolReport",
    "ProtocolViolation",
    "check_election_safety",
    "check_gossip_convergence",
    "check_log_agreement",
    "Budget",
    "minimize",
    "OracleStats",
    "SynthesisResult",
    "dynamic_counterexample",
    "enumerate_witness_logs",
    "fence_cost",
    "static_counterexample",
    "synthesize_fences",
    "FuzzCase",
    "FuzzFailure",
    "FuzzReport",
    "fuzz_sweep",
    "run_case",
    "shrink_case",
    "write_reproducer",
]

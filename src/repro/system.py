"""System builder: wires cores, L1s, directory, and interconnect.

This is the main entry point for running a workload::

    from repro import System, SystemConfig
    system = System(config, programs, initial_memory={LOCK: 0})
    result = system.run()
    print(result.cycles, result.read_word(COUNTER))
"""

from __future__ import annotations

import gc
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.baselines.chunk import CommitArbiter
from repro.coherence.cache import CacheState
from repro.coherence.directory import Directory
from repro.coherence.homemap import build_home_map
from repro.coherence.l1 import L1Cache
from repro.cpu.core import Core, StallCause
from repro.faults.injector import FaultInjector
from repro.faults.nodeplan import NodeFaultPlan
from repro.faults.nodes import NodeFaultController
from repro.faults.plan import FaultPlan
from repro.faults.watchdog import DeadlockError, Watchdog, diagnostic_dump
from repro.interconnect.crossbar import Crossbar
from repro.interconnect.mesh import Mesh
from repro.isa.program import Program
from repro.sim.config import SystemConfig, Topology
from repro.sim.engine import SimulationError, Simulator
from repro.sim.stats import StatsRegistry

#: Watchdog: a healthy workload in this suite never needs this many events.
DEFAULT_MAX_EVENTS = 50_000_000


class CoherenceInvariantError(AssertionError):
    """Raised when the single-writer/multiple-reader invariant is broken."""


@dataclass
class CoreSummary:
    """Per-core outcome snapshot (picklable, no simulator references)."""

    core_id: int
    instructions: int
    finish_cycle: Optional[int]
    busy_cycles: int
    stall_cycles: Dict[StallCause, int]
    registers: List[int]
    # Trace-compilation coverage (superblock fusion).  Deliberately NOT
    # part of the stats registry: result fingerprints hash the full
    # stats snapshot, and fusion must be invisible there.  Defaults keep
    # summaries pickled by older workers loadable.
    fused_instructions: int = 0
    fused_blocks: int = 0
    # Node-fault outcome (chaos layer).  Defaults keep summaries pickled
    # by older workers loadable; property checkers read these to decide
    # which cores count as "live" for convergence/agreement claims.
    crashed: bool = False
    crashed_at: Optional[int] = None

    def ordering_stall_cycles(self) -> int:
        return sum(cycles for cause, cycles in self.stall_cycles.items()
                   if cause.is_ordering)

    def read_reg(self, index: int) -> int:
        return 0 if index == 0 else self.registers[index]


class SystemResult:
    """Picklable outcome of one simulation run.

    Everything the harness, validators and benchmarks read -- cycle
    count, the full statistics registry, per-core summaries, and an
    architectural memory snapshot -- is captured by value at
    construction time, with no reference back to the live
    :class:`System`.  Results therefore survive ``pickle``, which lets
    the parallel sweep runner ship them back from worker processes.
    """

    def __init__(self, system: "System"):
        self.cycles = max((c.finish_cycle or 0) for c in system.cores)
        self.events = system.sim.events_dispatched
        self.stats = system.stats
        self.config = system.config
        self.cores: List[CoreSummary] = [
            CoreSummary(
                core_id=c.core_id,
                instructions=c.instructions,
                finish_cycle=c.finish_cycle,
                busy_cycles=c.stat_busy.value,
                stall_cycles={cause: c.stat_stall[cause].value
                              for cause in StallCause},
                registers=c.regs.snapshot(),
                fused_instructions=c.fused_instructions,
                fused_blocks=c.fused_blocks,
                crashed=(c.nf_state == 2),
                crashed_at=c.nf_crashed_at,
            )
            for c in system.cores
        ]
        self._memory = system.memory_snapshot()

    @classmethod
    def from_parts(cls, config: SystemConfig, cycles: int, events: int,
                   stats: StatsRegistry, cores: List[CoreSummary],
                   memory: Dict[int, int]) -> "SystemResult":
        """Assemble a result from already-merged pieces.

        The sharded engine (:mod:`repro.sim.sharded`) runs the machine
        as several worker processes and merges their stats registries,
        core summaries, and memory slices; this constructor gives the
        merge a result object indistinguishable from a serial run's.
        """
        result = cls.__new__(cls)
        result.cycles = cycles
        result.events = events
        result.stats = stats
        result.config = config
        result.cores = cores
        result._memory = memory
        return result

    def crashed_core_ids(self) -> List[int]:
        """Cores the node-fault plan crash-stopped (empty when clean)."""
        return [c.core_id for c in self.cores if c.crashed]

    def live_core_ids(self) -> List[int]:
        """Cores that ran to HALT (survivors, including resumed ones)."""
        return [c.core_id for c in self.cores if not c.crashed]

    def read_word(self, addr: int) -> int:
        """Architectural memory value after the run (L1-dirty-aware)."""
        return self._memory.get(addr, 0)

    def core_reg(self, core_id: int, reg: int) -> int:
        return self.cores[core_id].read_reg(reg)

    def total_instructions(self) -> int:
        return sum(c.instructions for c in self.cores)

    def fused_instructions(self) -> int:
        """Dynamic instructions retired inside fused superblocks."""
        return sum(c.fused_instructions for c in self.cores)

    def fused_blocks(self) -> int:
        """Fused superblock dispatches across all cores."""
        return sum(c.fused_blocks for c in self.cores)

    def fusion_coverage(self) -> float:
        """Fraction of dynamic instructions retired inside superblocks."""
        total = self.total_instructions()
        return self.fused_instructions() / total if total else 0.0

    def mean_superblock_length(self) -> float:
        """Mean dynamic length of dispatched superblocks (0 if none)."""
        blocks = self.fused_blocks()
        return self.fused_instructions() / blocks if blocks else 0.0

    def ordering_stall_cycles(self) -> int:
        return sum(c.ordering_stall_cycles() for c in self.cores)

    def stall_cycles(self, cause: StallCause) -> int:
        return sum(c.stall_cycles[cause] for c in self.cores)

    def busy_cycles(self) -> int:
        return sum(c.busy_cycles for c in self.cores)

    def violations(self) -> int:
        return int(self.stats.sum(
            f"spec.{i}.violations" for i in range(self.config.n_cores)
        ))

    def commits(self) -> int:
        return int(self.stats.sum(
            f"spec.{i}.commits" for i in range(self.config.n_cores)
        ))


class System:
    """A complete simulated machine bound to one set of thread programs."""

    def __init__(
        self,
        config: SystemConfig,
        programs: Sequence[Program],
        initial_memory: Optional[Dict[int, int]] = None,
        fastpath: bool = True,
        fault_plan: Optional[FaultPlan] = None,
        node_plan: Optional[NodeFaultPlan] = None,
    ):
        if len(programs) != config.n_cores:
            raise ValueError(
                f"need exactly {config.n_cores} programs, got {len(programs)}"
            )
        self.config = config
        # fastpath=False routes every event through the Event-allocating
        # slow path; results are bit-identical (the determinism suite
        # proves it), it exists only for that proof.
        self.sim = Simulator(fastpath=fastpath)
        self.stats = StatsRegistry()
        if config.interconnect.topology is Topology.MESH:
            self.net = Mesh(self.sim, config.n_cores + config.n_homes,
                            self.stats,
                            hop_latency=config.interconnect.mesh_hop_latency,
                            link_issue_interval=config.interconnect.port_issue_interval)
        else:
            self.net = Crossbar(self.sim, config.interconnect, self.stats)

        # An *active* fault plan wraps the interconnect before anything
        # attaches; every endpoint then registers with both layers.  A
        # clean plan (or None) leaves the machine byte-identical to a
        # build without the fault subsystem.
        self.fault_plan = fault_plan if fault_plan is not None and fault_plan.active \
            else None
        if self.fault_plan is not None:
            self.net = FaultInjector(self.sim, self.net, self.fault_plan, self.stats)

        # The node-fault axis follows the same rule: an inactive plan is
        # indistinguishable from none, and an active one touches only
        # the cores it names (see enable_node_faults / NodeFaultController).
        self.node_plan = node_plan if node_plan is not None and node_plan.active \
            else None
        self.crashed_cores: set = set()
        self.node_controller: Optional[NodeFaultController] = None
        if self.node_plan is not None:
            for fault in self.node_plan.faults:
                if fault.core >= config.n_cores:
                    raise ValueError(
                        f"node fault targets core {fault.core}, but the "
                        f"system has only {config.n_cores} cores")

        directory_id = config.n_cores
        copy_blocks = config.debug_copy_blocks
        # Directory homes: home h lives at node id n_cores + h.  With
        # one home (the default) this is the historical single directory
        # and the home map degenerates to a constant; the "dir.*" stats
        # are registry get-or-create, so multiple homes share them.
        self.home_map = build_home_map(config.n_homes, directory_id)
        self.directories: List[Directory] = []
        for home in range(config.n_homes):
            directory = Directory(self.sim, directory_id + home, config.l1,
                                  config.memory, self.net, self.stats,
                                  copy_blocks=copy_blocks)
            self.net.attach(directory_id + home, directory)
            self.directories.append(directory)
        self.directory = self.directories[0]

        if initial_memory:
            for addr, value in initial_memory.items():
                if addr % 8 != 0:
                    raise ValueError(f"initial memory address {addr:#x} not word-aligned")
                home = self.home_map.home_index(config.l1.block_of(addr))
                self.directories[home].preload(addr, value)

        self.commit_arbiter: Optional[CommitArbiter] = None
        if config.speculation.enabled and config.speculation.commit_arbitration:
            self.commit_arbiter = CommitArbiter(
                self.sim, config.speculation.arbitration_latency, self.stats)

        self.l1s: List[L1Cache] = []
        self.cores: List[Core] = []
        self._halted_count = 0
        targeted = (self.node_plan.affected_cores()
                    if self.node_plan is not None else frozenset())
        for core_id, program in enumerate(programs):
            l1 = L1Cache(self.sim, core_id, config.l1, config.speculation,
                         self.net, directory_id, self.stats,
                         copy_blocks=copy_blocks, home_map=self.home_map)
            self.net.attach(core_id, l1)
            # Targeted cores run per-instruction: a fused superblock
            # executes atomically at its head dispatch, so a fault
            # landing mid-block would settle at different instruction
            # boundaries fused vs. unfused, breaking the superblocks
            # on/off determinism guarantee.  Untargeted cores keep
            # fusion (and their original closures).
            core = Core(self.sim, core_id, config.core, config.speculation,
                        program, l1, self.stats, on_halt=self._on_core_halt,
                        commit_arbiter=self.commit_arbiter,
                        superblocks=config.superblocks
                        and core_id not in targeted)
            self.l1s.append(l1)
            self.cores.append(core)

        if self.node_plan is not None:
            deferred = self.stats.counter("nodefaults.deferred")
            for core_id in targeted:
                self.cores[core_id]._nf_stat_deferred = deferred
                self.cores[core_id].enable_node_faults()
            self.node_controller = NodeFaultController(
                self.sim, self.cores, self.node_plan, self.stats,
                on_crash=self._on_core_crash)

        if self.fault_plan is not None:
            # Endpoints must tolerate what the injector does: duplicates
            # (uid suppression) and drops (NACK-driven retries).
            for directory in self.directories:
                directory.enable_fault_hardening(self.fault_plan, self.stats)
            for l1 in self.l1s:
                l1.enable_fault_hardening(self.fault_plan, self.stats)

    def _on_core_halt(self, core: Core) -> None:
        self._halted_count += 1

    def _on_core_crash(self, core: Core) -> None:
        self.crashed_cores.add(core.core_id)

    @property
    def all_halted(self) -> bool:
        return self._halted_count == len(self.cores)

    @property
    def all_settled(self) -> bool:
        """Every core either halted or was crash-stopped by the plan.

        This is the chaos-aware liveness criterion: a crashed core never
        halts, so a run that loses nodes is *supposed* to end with the
        survivors halted and the victims crashed.  (A core cannot be
        both: a crash on a halted core is a no-op, and a crashed core
        can never reach HALT.)
        """
        return self._halted_count + len(self.crashed_cores) == len(self.cores)

    def run(self, max_events: int = DEFAULT_MAX_EVENTS,
            check_invariants: bool = False,
            max_cycles: Optional[int] = None,
            watchdog: Optional[Watchdog] = None) -> SystemResult:
        """Run every core to completion and return the result.

        ``check_invariants=True`` validates the coherence SWMR invariant
        after the run (tests use it; benchmarks skip the cost).
        ``max_cycles`` caps simulated time (off by default; harness and
        fuzz entry points set it) and ``watchdog`` arms a
        :class:`repro.faults.Watchdog` liveness monitor.  Raises
        :class:`~repro.faults.DeadlockError` on deadlock (event queue
        drained -- or quiescent, with a watchdog -- while cores are
        blocked), :class:`~repro.faults.LivelockError` on a watchdog
        no-commit window expiry, or :class:`SimulationError` on the
        event/cycle caps; all carry a diagnostic dump.
        """
        if self.node_controller is not None:
            # Before the cores: a cycle's fault events must precede that
            # cycle's instruction dispatches (FIFO within a bucket), so
            # even a cycle-0 crash lands before the first fetch.
            self.node_controller.start()
        for core in self.cores:
            core.start()
        if watchdog is not None:
            watchdog.start()
        # Suspend the cyclic GC for the event loop: the simulation
        # allocates heavily (messages, schedule tuples, requests) but
        # creates no cycles it needs collected mid-run, and gen-0 scans
        # cost several percent of wall time.  Restored in ``finally`` so
        # exceptions (and callers who already disabled GC) are safe.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            self.sim.run(max_events=max_events, max_cycles=max_cycles)
        except SimulationError as exc:
            if type(exc) is not SimulationError:
                raise  # watchdog Deadlock/LivelockError: dump already attached
            raise SimulationError(f"{exc}\n{diagnostic_dump(self)}") from exc
        finally:
            if gc_was_enabled:
                gc.enable()
        if not self.all_settled:
            stuck = [c.core_id for c in self.cores
                     if not c.halted and c.core_id not in self.crashed_cores]
            crashed = ""
            if self.crashed_cores:
                crashed = (f" (cores {sorted(self.crashed_cores)} "
                           "crash-stopped by the node-fault plan)")
            raise DeadlockError(
                f"deadlock: event queue drained with cores {stuck} not halted "
                f"at cycle {self.sim.now}{crashed}\n{diagnostic_dump(self)}"
            )
        if check_invariants:
            self.check_swmr()
        return SystemResult(self)

    def enable_tracing(self, limit: int = 10_000):
        """Record every coherence message into a bounded ring buffer.

        Returns the :class:`repro.sim.trace.MessageTrace`; call its
        ``render()`` / ``filter()`` to inspect protocol activity.  Must
        be called before :meth:`run`.
        """
        from repro.sim.trace import attach_trace
        return attach_trace(self, limit)

    # ----------------------------------------------------------- inspection

    def read_word(self, addr: int) -> int:
        """The architecturally current value of one memory word.

        A dirty M copy in some L1 wins; otherwise the directory/L2
        backing copy is current.
        """
        block_addr = self.config.l1.block_of(addr)
        for l1 in self.l1s:
            block = l1.array.lookup(block_addr, touch=False)
            if block is not None and block.state is CacheState.MODIFIED:
                return block.data[l1.array.word_index(addr)]
        home = self.home_map.home_index(block_addr)
        return self.directories[home].peek_word(addr)

    def memory_snapshot(self) -> Dict[int, int]:
        """Every architecturally known memory word, dirty-L1-aware.

        The directory/L2 backing store is overlaid with any MODIFIED L1
        copies; words never touched by the run are absent (they read as
        zero, matching :meth:`read_word`).
        """
        snapshot: Dict[int, int] = {}
        for directory in self.directories:
            for block_addr, data in directory.backing_blocks():
                for i, value in enumerate(data):
                    snapshot[block_addr + 8 * i] = value
        for l1 in self.l1s:
            for block in l1.array:
                if block.state is CacheState.MODIFIED:
                    for i, value in enumerate(block.data):
                        snapshot[block.addr + 8 * i] = value
        return snapshot

    def check_swmr(self) -> None:
        """Single-writer/multiple-reader: for every block, at most one L1
        holds it writable, and never alongside readable copies elsewhere."""
        holders: Dict[int, List[CacheState]] = {}
        for l1 in self.l1s:
            for block in l1.array:
                holders.setdefault(block.addr, []).append(block.state)
        for addr, states in holders.items():
            writable = sum(1 for s in states if s.writable)
            readable = len(states)
            if writable > 1:
                raise CoherenceInvariantError(
                    f"block {addr:#x}: {writable} writable copies"
                )
            if writable == 1 and readable > 1:
                raise CoherenceInvariantError(
                    f"block {addr:#x}: writable copy coexists with "
                    f"{readable - 1} other copies"
                )


def run_system(config: SystemConfig, programs: Sequence[Program],
               initial_memory: Optional[Dict[int, int]] = None,
               check_invariants: bool = False) -> SystemResult:
    """One-shot convenience wrapper: build a :class:`System` and run it."""
    system = System(config, programs, initial_memory)
    return system.run(check_invariants=check_invariants)

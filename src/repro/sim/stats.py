"""Statistics collection: counters, accumulators, histograms, registry.

Every measurable quantity in the simulated machine (stall cycles by
cause, coherence message counts, rollback counts, ...) is recorded in one
of the primitives here and grouped under a hierarchical dotted name in a
:class:`StatsRegistry`, e.g. ``core0.stall.fence_drain``.  The benchmark
harness reads these registries to regenerate the paper's tables and
figures.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, List, Optional, Tuple


class Counter:
    """A monotonically growing integer count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def increment(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"Counter {self.name}: negative increment {amount}")
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Accumulator:
    """Tracks sum / count / min / max / mean of observed samples."""

    __slots__ = ("name", "total", "count", "minimum", "maximum")

    def __init__(self, name: str):
        self.name = name
        self.total = 0.0
        self.count = 0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def add(self, sample: float) -> None:
        self.total += sample
        self.count += 1
        if self.minimum is None or sample < self.minimum:
            self.minimum = sample
        if self.maximum is None or sample > self.maximum:
            self.maximum = sample

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        self.total = 0.0
        self.count = 0
        self.minimum = None
        self.maximum = None

    def __repr__(self) -> str:
        return (
            f"Accumulator({self.name}: n={self.count} sum={self.total} "
            f"mean={self.mean:.3f})"
        )


class Histogram:
    """A histogram over non-negative integer samples.

    Buckets are either linear (``bucket_width``) or power-of-two
    (``log2=True``).  Also tracks exact sum/count so means stay precise.
    """

    __slots__ = ("name", "bucket_width", "log2", "buckets", "total", "count")

    def __init__(self, name: str, bucket_width: int = 1, log2: bool = False):
        if bucket_width < 1:
            raise ValueError("bucket_width must be >= 1")
        self.name = name
        self.bucket_width = bucket_width
        self.log2 = log2
        self.buckets: Dict[int, int] = {}
        self.total = 0
        self.count = 0

    def _bucket_of(self, sample: int) -> int:
        if self.log2:
            return 0 if sample <= 0 else sample.bit_length()
        return sample // self.bucket_width

    def add(self, sample: int, weight: int = 1) -> None:
        if sample < 0:
            raise ValueError(f"Histogram {self.name}: negative sample {sample}")
        # _bucket_of inlined: add() runs once per store/message on hot paths.
        if self.log2:
            bucket = 0 if sample <= 0 else sample.bit_length()
        else:
            bucket = sample // self.bucket_width
        buckets = self.buckets
        buckets[bucket] = buckets.get(bucket, 0) + weight
        self.total += sample * weight
        self.count += weight

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, fraction: float) -> int:
        """Return the lower edge of the bucket containing the percentile.

        ``fraction`` is in [0, 1].  With no samples, returns 0.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be within [0, 1]")
        if not self.count:
            return 0
        target = math.ceil(fraction * self.count)
        seen = 0
        for bucket in sorted(self.buckets):
            seen += self.buckets[bucket]
            if seen >= target:
                if self.log2:
                    return 0 if bucket == 0 else 1 << (bucket - 1)
                return bucket * self.bucket_width
        last = max(self.buckets)
        if self.log2:
            return 0 if last == 0 else 1 << (last - 1)
        return last * self.bucket_width

    def items(self) -> Iterator[Tuple[int, int]]:
        """Yield (bucket lower edge, count) in ascending order."""
        for bucket in sorted(self.buckets):
            if self.log2:
                edge = 0 if bucket == 0 else 1 << (bucket - 1)
            else:
                edge = bucket * self.bucket_width
            yield edge, self.buckets[bucket]

    def reset(self) -> None:
        self.buckets.clear()
        self.total = 0
        self.count = 0

    def __repr__(self) -> str:
        return f"Histogram({self.name}: n={self.count} mean={self.mean:.3f})"


class StatsRegistry:
    """Hierarchical registry of statistics, keyed by dotted names.

    Component constructors call :meth:`counter` / :meth:`accumulator` /
    :meth:`histogram` to create-or-fetch their stats; the harness reads
    them back with :meth:`get` / :meth:`snapshot` / :meth:`report`.
    """

    def __init__(self) -> None:
        self._stats: Dict[str, object] = {}

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def accumulator(self, name: str) -> Accumulator:
        return self._get_or_create(name, Accumulator)

    def histogram(self, name: str, bucket_width: int = 1, log2: bool = False) -> Histogram:
        existing = self._stats.get(name)
        if existing is not None:
            if not isinstance(existing, Histogram):
                raise TypeError(f"stat {name!r} already exists with type {type(existing).__name__}")
            if existing.bucket_width != bucket_width or existing.log2 != log2:
                raise ValueError(
                    f"histogram {name!r} already exists with "
                    f"bucket_width={existing.bucket_width}, log2={existing.log2}; "
                    f"requested bucket_width={bucket_width}, log2={log2}"
                )
            return existing
        hist = Histogram(name, bucket_width=bucket_width, log2=log2)
        self._stats[name] = hist
        return hist

    def _get_or_create(self, name: str, cls):
        existing = self._stats.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise TypeError(f"stat {name!r} already exists with type {type(existing).__name__}")
            return existing
        stat = cls(name)
        self._stats[name] = stat
        return stat

    def get(self, name: str):
        """Return the stat registered under ``name`` (KeyError if absent)."""
        return self._stats[name]

    def __contains__(self, name: str) -> bool:
        return name in self._stats

    def names(self, prefix: str = "") -> List[str]:
        """All registered names, optionally filtered by dotted prefix."""
        if not prefix:
            return sorted(self._stats)
        dotted = prefix if prefix.endswith(".") else prefix + "."
        return sorted(n for n in self._stats if n == prefix or n.startswith(dotted))

    def value(self, name: str) -> float:
        """A scalar view of any stat: counter value / accumulator sum / histogram count."""
        stat = self._stats[name]
        if isinstance(stat, Counter):
            return stat.value
        if isinstance(stat, Accumulator):
            return stat.total
        if isinstance(stat, Histogram):
            return stat.count
        raise TypeError(f"unknown stat type for {name!r}")

    def sum(self, names: Iterable[str]) -> float:
        """Sum the scalar views of several stats (missing names are 0)."""
        return sum(self.value(n) for n in names if n in self._stats)

    def snapshot(self) -> Dict[str, float]:
        """Scalar snapshot of every stat, for CSV export / comparison."""
        return {name: self.value(name) for name in sorted(self._stats)}

    def reset(self) -> None:
        for stat in self._stats.values():
            stat.reset()  # type: ignore[attr-defined]

    def report(self, prefix: str = "") -> str:
        """A human-readable multi-line report, optionally prefix-filtered."""
        lines = []
        for name in self.names(prefix):
            stat = self._stats[name]
            if isinstance(stat, Counter):
                lines.append(f"{name:<50s} {stat.value}")
            elif isinstance(stat, Accumulator):
                lines.append(
                    f"{name:<50s} n={stat.count} sum={stat.total:.0f} mean={stat.mean:.2f}"
                )
            elif isinstance(stat, Histogram):
                lines.append(f"{name:<50s} n={stat.count} mean={stat.mean:.2f}")
        return "\n".join(lines)

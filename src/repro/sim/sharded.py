"""Sharded multi-process simulation: bounded-lag epoch parallelism.

The single-process engine runs the whole machine on one Python thread,
which caps E9-style scaling studies right where contention gets
interesting.  This module partitions the simulated system into
``shards`` worker processes -- each owning a contiguous slice of the
cores (pipelines + L1s) and a slice of the directory homes -- and
advances them in **conservative bounded-lag epochs**:

* **Lookahead.**  Every cross-shard interaction travels through the
  interconnect, and the interconnect has a minimum latency ``L``
  (``link_latency`` on the crossbar, ``mesh_hop_latency`` per hop on
  the mesh).  A message sent at cycle ``t`` can therefore never arrive
  before ``t + L``.
* **Epoch window.**  All shards run ``[start, start + L - 1]``
  independently; any message generated inside the window arrives at
  ``>= start + L``, i.e. strictly after the window, so no shard can
  receive a message from its own past.
* **Barrier.**  At the window end each shard ships the boundary
  messages it generated (per-pair FIFO channels: pickled frames over
  per-pair pipes), along with a *hint* -- the earliest cycle at which
  it could next do anything (its next local event, or its earliest
  outgoing arrival).  Every shard computes the identical global minimum
  and jumps its next window there, so idle stretches cost one barrier,
  not ``stretch / L`` of them.  A global hint of +inf terminates.

Determinism: each shard is itself the deterministic serial engine, and
arriving boundary messages are inserted in a canonical order -- sorted
by ``(arrive_cycle, origin_shard, origin_sequence)`` -- so a sharded
run is a pure function of (config, programs, plans, shards).  The
in-process reference mode (``mode="inline"``) executes bit-identically
to the forked mode, and ``docs/SHARDING.md`` spells out exactly when a
sharded run also reproduces the *serial* engine's fingerprints.

What sharding refuses (cleanly, at entry): commit arbitration (a
global synchronous arbiter), active fault plans in ``global`` RNG scope
(one RNG consumed in global send order cannot be replayed shard-locally
-- use ``rng_scope="pair"``), and a crossbar with ``link_latency < 1``
(zero lookahead admits no conservative window).
"""

from __future__ import annotations

import itertools
import multiprocessing
import time
from heapq import heappush as _heappush
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.coherence import messages as _messages
from repro.coherence.cache import CacheState
from repro.coherence.directory import Directory
from repro.coherence.homemap import build_home_map
from repro.coherence.l1 import L1Cache
from repro.cpu.core import Core, StallCause
from repro.faults.injector import FaultInjector
from repro.faults.nodeplan import NodeFaultPlan
from repro.faults.nodes import NodeFaultController
from repro.faults.plan import FaultPlan
from repro.faults.watchdog import DeadlockError
from repro.interconnect.crossbar import Crossbar
from repro.interconnect.mesh import Mesh
from repro.isa.program import Program
from repro.sim.config import SystemConfig, Topology
from repro.sim.engine import SimulationError, Simulator
from repro.sim.stats import Accumulator, Counter, Histogram, StatsRegistry
from repro.system import DEFAULT_MAX_EVENTS, CoreSummary, SystemResult

_INF = float("inf")

#: boundary-record kinds
_DELIVER = 0    # payload = destination node id
_TRAVERSE = 1   # payload = (path, index, dst) -- mesh flit mid-route


class ShardingError(ValueError):
    """A configuration the sharded engine refuses to run."""


# --------------------------------------------------------------- layout

class ShardLayout:
    """Static ownership map: which shard owns each core / home / node.

    Cores are split into contiguous slices (locality: neighbouring
    cores usually share workload phases); home ``h`` goes to shard
    ``h % n_shards`` so directory load spreads over all shards.
    """

    def __init__(self, config: SystemConfig, n_shards: int):
        n_cores, n_homes = config.n_cores, config.n_homes
        self.n_shards = n_shards
        base, rem = divmod(n_cores, n_shards)
        self.core_slices: List[List[int]] = []
        start = 0
        for shard in range(n_shards):
            size = base + (1 if shard < rem else 0)
            self.core_slices.append(list(range(start, start + size)))
            start += size
        self.home_slices: List[List[int]] = [
            [h for h in range(n_homes) if h % n_shards == shard]
            for shard in range(n_shards)
        ]
        #: node id -> owning shard, for every node on the interconnect
        self.owner: List[int] = [0] * (n_cores + n_homes)
        for shard, cores in enumerate(self.core_slices):
            for core_id in cores:
                self.owner[core_id] = shard
        for shard, homes in enumerate(self.home_slices):
            for home in homes:
                self.owner[n_cores + home] = shard


def _lookahead(config: SystemConfig) -> int:
    if config.interconnect.topology is Topology.MESH:
        return config.interconnect.mesh_hop_latency
    return config.interconnect.link_latency


# ------------------------------------------------------ boundary fabric

class _RemoteStub:
    """Placeholder endpoint for nodes another shard owns.

    Attached so the base interconnect's src/dst checks pass; a local
    delivery to it means the boundary routing is broken.
    """

    __slots__ = ("node",)

    def __init__(self, node: int):
        self.node = node

    def receive(self, msg: Any) -> None:
        raise SimulationError(
            f"boundary routing error: message delivered locally to "
            f"remote node {self.node}")


class _ShardCrossbar(Crossbar):
    """Crossbar whose remote deliveries divert into the shard outbox.

    Sender-side bookkeeping (port serialisation, injection stats) is
    identical to the serial crossbar; only the final delivery crosses
    the process boundary, carrying its exact arrival cycle.
    """

    def __init__(self, sim, config, stats, owner: List[int], me: int,
                 outbox: List[tuple], marks: Dict[int, int]):
        super().__init__(sim, config, stats)
        self._owner = owner
        self._me = me
        self._outbox = outbox
        self._marks = marks
        # Base __init__ may have installed the compat send as an
        # instance attribute; capture whichever local variant applies,
        # then interpose the boundary check in front of it.
        self._local_send = self._send_compat if not sim.fastpath \
            else Crossbar.send.__get__(self)
        self.send = self._boundary_send  # type: ignore[method-assign]

    def _boundary_send(self, src: int, dst: int, msg: Any) -> None:
        ports = self._port_free_at
        if src not in ports:
            raise KeyError(f"unknown source node {src}")
        now = self.sim._now
        free = ports[src]
        inject_at = free if free > now else now
        arrive = inject_at + self._link_latency
        if self._owner[dst] == self._me:
            self._local_send(src, dst, msg)
            # Record where this bucket's delivery prefix now ends:
            # boundary arrivals for the same cycle splice in right here
            # (see _Shard.absorb for the ordering argument).
            self._marks[arrive] = len(self.sim._buckets[arrive])
            return
        ports[src] = inject_at + self._issue_interval
        self._queue_add(inject_at - now)
        self._sent.value += 1
        # Materialise the lazy uid before the message is pickled: a
        # duplicate injected by the fault layer shares its original's
        # uid by object identity, which pickling per-frame would break.
        msg.uid
        self._outbox.append((self._owner[dst], arrive, _DELIVER, dst, msg))


class _ShardMesh(Mesh):
    """Mesh that hands flits to the owner of the next tile.

    Each directed link is owned by (and its FIFO state lives in) the
    shard owning the link's *source* tile, so link claims happen
    exactly once, in arrival order, with serial timing: the handoff
    record carries the flit's precise arrival cycle at the next tile.
    Tiles that host no node (padding on a non-square grid) belong to
    shard 0.
    """

    def __init__(self, sim, n_nodes, stats, hop_latency, link_issue_interval,
                 owner: List[int], me: int, outbox: List[tuple],
                 marks: Dict[int, int]):
        self._owner = owner
        self._me = me
        self._outbox = outbox
        self._marks = marks
        super().__init__(sim, n_nodes, stats, hop_latency=hop_latency,
                         link_issue_interval=link_issue_interval)
        self._tile_owner: Dict[Tuple[int, int], int] = {}
        for tile, node in self._tiles.items():
            self._tile_owner[tile] = owner[node]
        for y in range(self.height):
            for x in range(self.width):
                self._tile_owner.setdefault((x, y), 0)
        # The boundary-aware traverse replaces both engine variants
        # (it schedules through sim.schedule_fast_at, which the compat
        # engine shadows, so both modes stay covered).
        self._traverse_h = self._traverse
        self._traverse_compat = self._traverse  # type: ignore[method-assign]

    def _traverse(self, path, index: int, dst: int, msg: Any,
                  arrived_at: int) -> None:
        if index == len(path) - 1:
            self._deliver(dst, msg)
            return
        nxt = path[index + 1]
        link = (path[index], nxt)
        free_at = self._link_free_at.get(link, 0)
        depart = arrived_at if arrived_at > free_at else free_at
        self._link_free_at[link] = depart + self.link_issue_interval
        self.stat_link_wait.add(depart - arrived_at)
        arrive = depart + self.hop_latency
        owner = self._tile_owner[nxt]
        if owner != self._me:
            msg.uid  # materialise before pickling (see _ShardCrossbar)
            self.inflight -= 1
            self._outbox.append((owner, arrive, _TRAVERSE,
                                 (path, index + 1, dst), msg))
            return
        self.sim.schedule_fast_at(arrive, self._traverse, path, index + 1,
                                  dst, msg, arrive)
        # Delivery-prefix mark, as in _ShardCrossbar._boundary_send.
        self._marks[arrive] = len(self.sim._buckets[arrive])


# --------------------------------------------------------------- shard

class _Shard:
    """One worker's slice of the machine: a faithful projection of
    ``System.__init__`` onto the owned cores and directory homes.

    Construction order mirrors the serial builder exactly (net ->
    fault-injector wrap -> directories -> preload -> L1s/cores ->
    node-fault wiring -> hardening), so per-component behaviour --
    including lazily created stats -- is the serial engine's.
    """

    def __init__(self, index: int, layout: ShardLayout, config: SystemConfig,
                 programs: Sequence[Program],
                 initial_memory: Optional[Dict[int, int]],
                 fastpath: bool,
                 fault_plan: Optional[FaultPlan],
                 node_plan: Optional[NodeFaultPlan]):
        self.index = index
        self.layout = layout
        self.config = config
        self.owned_cores = layout.core_slices[index]
        self.owned_homes = layout.home_slices[index]
        self.outbox: List[tuple] = []
        self.sim = Simulator(fastpath=fastpath)
        self.stats = StatsRegistry()
        self._seq = 0            # per-origin-shard record sequence
        #: bucket time -> index just past the last locally appended
        #: interconnect-delivery entry (maintained by the boundary nets)
        self.marks: Dict[int, int] = {}
        #: bucket time -> index just past the last absorbed boundary
        #: entry (see absorb's ordering rationale)
        self._absorbed_at: Dict[int, int] = {}

        n_cores, n_homes = config.n_cores, config.n_homes
        if config.interconnect.topology is Topology.MESH:
            self.basenet = _ShardMesh(
                self.sim, n_cores + n_homes, self.stats,
                hop_latency=config.interconnect.mesh_hop_latency,
                link_issue_interval=config.interconnect.port_issue_interval,
                owner=layout.owner, me=index, outbox=self.outbox,
                marks=self.marks)
        else:
            self.basenet = _ShardCrossbar(
                self.sim, config.interconnect, self.stats,
                owner=layout.owner, me=index, outbox=self.outbox,
                marks=self.marks)
        self.net: Any = self.basenet

        self.fault_plan = fault_plan if fault_plan is not None \
            and fault_plan.active else None
        if self.fault_plan is not None:
            self.net = FaultInjector(self.sim, self.net, self.fault_plan,
                                     self.stats)

        # Node faults: only the owned cores' faults run here.
        owned = set(self.owned_cores)
        self.node_plan: Optional[NodeFaultPlan] = None
        if node_plan is not None and node_plan.active:
            mine = tuple(f for f in node_plan.faults if f.core in owned)
            if mine:
                self.node_plan = NodeFaultPlan(seed=node_plan.seed,
                                               faults=mine)

        self.home_map = build_home_map(n_homes, n_cores)
        copy_blocks = config.debug_copy_blocks
        self.directories: List[Directory] = []
        for home in self.owned_homes:
            directory = Directory(self.sim, n_cores + home, config.l1,
                                  config.memory, self.net, self.stats,
                                  copy_blocks=copy_blocks)
            self.net.attach(n_cores + home, directory)
            self.directories.append(directory)

        if initial_memory:
            owned_home_set = set(self.owned_homes)
            by_home = {h: d for h, d in zip(self.owned_homes,
                                            self.directories)}
            for addr, value in initial_memory.items():
                if addr % 8 != 0:
                    raise ValueError(
                        f"initial memory address {addr:#x} not word-aligned")
                home = self.home_map.home_index(config.l1.block_of(addr))
                if home in owned_home_set:
                    by_home[home].preload(addr, value)

        self.l1s: List[L1Cache] = []
        self.cores: List[Core] = []
        self.core_by_id: Dict[int, Core] = {}
        self._halted_count = 0
        self.crashed_cores: set = set()
        targeted = (self.node_plan.affected_cores()
                    if self.node_plan is not None else frozenset())
        for core_id in self.owned_cores:
            l1 = L1Cache(self.sim, core_id, config.l1, config.speculation,
                         self.net, n_cores, self.stats,
                         copy_blocks=copy_blocks, home_map=self.home_map)
            self.net.attach(core_id, l1)
            core = Core(self.sim, core_id, config.core, config.speculation,
                        programs[core_id], l1, self.stats,
                        on_halt=self._on_core_halt, commit_arbiter=None,
                        superblocks=config.superblocks
                        and core_id not in targeted)
            self.l1s.append(l1)
            self.cores.append(core)
            self.core_by_id[core_id] = core

        # Remote stubs for every node another shard owns, so the base
        # interconnect's endpoint checks accept boundary-bound sends.
        for node in range(n_cores + n_homes):
            if layout.owner[node] != index:
                self.net.attach(node, _RemoteStub(node))

        self.node_controller: Optional[NodeFaultController] = None
        if self.node_plan is not None:
            deferred = self.stats.counter("nodefaults.deferred")
            for core_id in sorted(targeted):
                core = self.core_by_id[core_id]
                core._nf_stat_deferred = deferred
                core.enable_node_faults()
            # The controller indexes ``cores[fault.core]``; a dict keyed
            # by global core id satisfies that for a non-dense slice.
            self.node_controller = NodeFaultController(
                self.sim, self.core_by_id, self.node_plan, self.stats,
                on_crash=self._on_core_crash)

        if self.fault_plan is not None:
            for directory in self.directories:
                directory.enable_fault_hardening(self.fault_plan, self.stats)
            for l1 in self.l1s:
                l1.enable_fault_hardening(self.fault_plan, self.stats)

    def _on_core_halt(self, core: Core) -> None:
        self._halted_count += 1

    def _on_core_crash(self, core: Core) -> None:
        self.crashed_cores.add(core.core_id)

    # ------------------------------------------------------- epoch steps

    def start(self) -> None:
        if self.node_controller is not None:
            self.node_controller.start()
        for core in self.cores:
            core.start()

    def run_window(self, until: int, max_events: int,
                   max_cycles: Optional[int]) -> None:
        remaining = max_events - self.sim.events_dispatched
        if remaining <= 0:
            raise SimulationError(
                f"shard {self.index}: exceeded {max_events} events")
        self.sim.run(until=until, max_events=remaining,
                     max_cycles=max_cycles)

    def collect(self) -> Tuple[float, Dict[int, List[tuple]]]:
        """Drain the outbox into per-peer frames; compute this shard's
        hint (earliest cycle it could next act)."""
        frames: Dict[int, List[tuple]] = {}
        hint: float = self.sim._times[0] if self.sim._times else _INF
        if self.outbox:
            for dest, arrive, kind, payload, msg in self.outbox:
                self._seq += 1
                frames.setdefault(dest, []).append(
                    (arrive, self._seq, kind, payload, msg))
                if arrive < hint:
                    hint = arrive
            self.outbox.clear()
        return hint, frames

    def absorb(self, records: List[tuple]) -> None:
        """Insert boundary arrivals, already canonically sorted by
        ``(arrive, origin_shard, origin_seq)``.

        Ordering rationale: the serial engine dispatches a bucket in
        *append* order, so a bucket at cycle ``t`` is layered
        chronologically by when each entry was scheduled: far-ahead
        wakeups first (think phases, retry backoffs, scheduled >= L
        cycles early), then interconnect deliveries (all appended at
        their send cycle, ``t - L`` for a minimum-latency fabric), then
        near appends (a spinning core's next step goes in at ``t - 1``).
        A boundary arrival is a delivery whose send happened on another
        shard, so it belongs at the end of the *delivery* layer: the
        boundary nets maintain ``marks[t]`` = index just past the last
        locally appended delivery, and absorbed records splice in
        there -- after local deliveries, before everything the receiver
        appended later.  ``_absorbed_at`` keeps successive slabs in
        arrival order.  The residual divergence -- same-cycle sends
        from different shards to one endpoint, where the serial
        interleave is genuinely unrecoverable -- is the documented
        oracle-grid caveat (docs/SHARDING.md)."""
        sim = self.sim
        net = self.basenet
        buckets = sim._buckets
        marks = self.marks
        absorbed = self._absorbed_at
        now = sim._now
        for table in (marks, absorbed):
            if table:
                for stale in [t for t in table if t <= now]:
                    del table[stale]
        for arrive, _src, _seq, kind, payload, msg in records:
            net.inflight += 1
            if kind == _DELIVER:
                entry = (net._deliver, (payload, msg))
            else:
                path, index, dst = payload
                entry = (net._traverse, (path, index, dst, msg, arrive))
            position = absorbed.get(arrive, 0)
            mark = marks.get(arrive, 0)
            if mark > position:
                position = mark
            bucket = buckets.get(arrive)
            if bucket is None:
                buckets[arrive] = [entry]
                _heappush(sim._times, arrive)
            else:
                bucket.insert(position, entry)
            absorbed[arrive] = position + 1
            sim._pending += 1

    # --------------------------------------------------------- results

    @property
    def settled(self) -> bool:
        return self._halted_count + len(self.crashed_cores) == \
            len(self.owned_cores)

    def result_blob(self) -> dict:
        summaries = [
            CoreSummary(
                core_id=c.core_id,
                instructions=c.instructions,
                finish_cycle=c.finish_cycle,
                busy_cycles=c.stat_busy.value,
                stall_cycles={cause: c.stat_stall[cause].value
                              for cause in StallCause},
                registers=c.regs.snapshot(),
                fused_instructions=c.fused_instructions,
                fused_blocks=c.fused_blocks,
                crashed=(c.nf_state == 2),
                crashed_at=c.nf_crashed_at,
            )
            for c in self.cores
        ]
        backing: Dict[int, int] = {}
        for directory in self.directories:
            for block_addr, data in directory.backing_blocks():
                for i, value in enumerate(data):
                    backing[block_addr + 8 * i] = value
        dirty: Dict[int, int] = {}
        for l1 in self.l1s:
            for block in l1.array:
                if block.state is CacheState.MODIFIED:
                    for i, value in enumerate(block.data):
                        dirty[block.addr + 8 * i] = value
        stuck = [c.core_id for c in self.cores
                 if not c.halted and c.core_id not in self.crashed_cores]
        return {
            "settled": self.settled,
            "stuck": stuck,
            "stats": self.stats,
            "events": self.sim.events_dispatched,
            "summaries": summaries,
            "backing": backing,
            "dirty": dirty,
        }


# ------------------------------------------------------------ merging

def _merge_stats(registries: Sequence[StatsRegistry]) -> StatsRegistry:
    """Order-independent merge: every fingerprinted scalar (Counter
    value, Accumulator total, Histogram count) is a plain sum."""
    merged = StatsRegistry()
    for registry in registries:
        for name in sorted(registry._stats):
            stat = registry._stats[name]
            if isinstance(stat, Counter):
                merged.counter(name).value += stat.value
            elif isinstance(stat, Accumulator):
                acc = merged.accumulator(name)
                acc.total += stat.total
                acc.count += stat.count
                for bound, pick in (("minimum", min), ("maximum", max)):
                    theirs = getattr(stat, bound)
                    if theirs is None:
                        continue
                    ours = getattr(acc, bound)
                    setattr(acc, bound,
                            theirs if ours is None else pick(ours, theirs))
            elif isinstance(stat, Histogram):
                hist = merged.histogram(name, bucket_width=stat.bucket_width,
                                        log2=stat.log2)
                for bucket, weight in stat.buckets.items():
                    hist.buckets[bucket] = \
                        hist.buckets.get(bucket, 0) + weight
                hist.total += stat.total
                hist.count += stat.count
            else:  # pragma: no cover - registry only makes these three
                raise TypeError(f"cannot merge stat {name}: {type(stat)}")
    return merged


def _merge_result(config: SystemConfig, blobs: List[dict],
                  telemetry: dict) -> SystemResult:
    for blob in blobs:
        if not blob["settled"]:
            stuck = sorted(core for b in blobs for core in b["stuck"])
            raise DeadlockError(
                f"deadlock under sharding: cores {stuck} not settled "
                f"(sharded runs carry no per-shard diagnostic dump; "
                f"reproduce serially for the full dump)")
    summaries = sorted((s for blob in blobs for s in blob["summaries"]),
                       key=lambda s: s.core_id)
    memory: Dict[int, int] = {}
    for blob in blobs:
        memory.update(blob["backing"])
    for blob in blobs:
        memory.update(blob["dirty"])
    result = SystemResult.from_parts(
        config=config,
        cycles=max((s.finish_cycle or 0) for s in summaries),
        events=sum(blob["events"] for blob in blobs),
        stats=_merge_stats([blob["stats"] for blob in blobs]),
        cores=summaries,
        memory=memory,
    )
    result.sharding = telemetry
    return result


# -------------------------------------------------------- epoch drivers

def _epoch_sort_key(record: tuple) -> tuple:
    # (arrive, origin_shard, origin_seq): the canonical insertion order.
    return (record[0], record[1], record[2])


def _run_inline(shards: List[_Shard], lookahead: int, max_events: int,
                max_cycles: Optional[int]) -> dict:
    """In-process reference driver: the same shard objects, the same
    barrier protocol, no processes.  Bit-identical to the forked mode
    (the determinism tests assert it) and the fallback when forking is
    unavailable (e.g. inside daemonic pool workers)."""
    for shard in shards:
        shard.start()
    window_start = 0
    epochs = 0
    crossings = 0
    while True:
        if max_cycles is not None and window_start > max_cycles:
            raise SimulationError(
                f"watchdog: sharded window start {window_start} past "
                f"max_cycles={max_cycles}")
        until = window_start + lookahead - 1
        for shard in shards:
            shard.run_window(until, max_events, max_cycles)
        epochs += 1
        hints = []
        inboxes: List[List[tuple]] = [[] for _ in shards]
        for shard in shards:
            hint, frames = shard.collect()
            hints.append(hint)
            for dest, records in frames.items():
                for arrive, seq, kind, payload, msg in records:
                    inboxes[dest].append(
                        (arrive, shard.index, seq, kind, payload, msg))
                crossings += len(records)
        for shard, inbox in zip(shards, inboxes):
            if inbox:
                inbox.sort(key=_epoch_sort_key)
                shard.absorb(inbox)
        global_next = min(hints)
        if global_next == _INF:
            break
        window_start = int(global_next)
    return {"epochs": epochs, "crossings": crossings}


def _worker_main(index: int, layout: ShardLayout, config: SystemConfig,
                 programs: Sequence[Program],
                 initial_memory: Optional[Dict[int, int]], fastpath: bool,
                 fault_plan: Optional[FaultPlan],
                 node_plan: Optional[NodeFaultPlan], lookahead: int,
                 max_events: int, max_cycles: Optional[int],
                 peer_conns: Dict[int, Any], control_conn: Any) -> None:
    """Forked worker: one shard plus the distributed barrier loop."""
    try:
        # Stride the message-uid counter so uids are unique across
        # workers (uid values are never fingerprinted; only equality
        # matters, for duplicate suppression).
        _messages._msg_ids = itertools.count(index, layout.n_shards)
        shard = _Shard(index, layout, config, programs, initial_memory,
                       fastpath, fault_plan, node_plan)
        peers = sorted(peer_conns)
        shard.start()
        window_start = 0
        epochs = 0
        crossings = 0
        # Busy time = wall time minus the time spent *blocked* at the
        # barrier waiting for peers.  On a single-CPU host the workers
        # are time-sliced, so wall clock cannot show a speedup; the
        # maximum per-shard busy time is the critical path a genuinely
        # parallel host would pay, and BENCH_5 reports both.
        wall_start = time.perf_counter()
        blocked = 0.0
        while True:
            if max_cycles is not None and window_start > max_cycles:
                raise SimulationError(
                    f"watchdog: sharded window start {window_start} past "
                    f"max_cycles={max_cycles}")
            until = window_start + lookahead - 1
            shard.run_window(until, max_events, max_cycles)
            epochs += 1
            hint, frames = shard.collect()
            # All-to-all barrier: send every peer its frame (plus our
            # hint), then gather.  Frames are small (boundary messages
            # of one window), so sends never fill the pipe buffers.
            for peer in peers:
                records = frames.get(peer, ())
                crossings += len(records)
                peer_conns[peer].send((hint, records))
            hints = [hint]
            inbox: List[tuple] = []
            for peer in peers:
                recv_start = time.perf_counter()
                peer_hint, records = peer_conns[peer].recv()
                blocked += time.perf_counter() - recv_start
                hints.append(peer_hint)
                for arrive, seq, kind, payload, msg in records:
                    inbox.append((arrive, peer, seq, kind, payload, msg))
            if inbox:
                inbox.sort(key=_epoch_sort_key)
                shard.absorb(inbox)
            global_next = min(hints)
            if global_next == _INF:
                break
            window_start = int(global_next)
        blob = shard.result_blob()
        blob["epochs"] = epochs
        blob["crossings"] = crossings
        blob["busy_seconds"] = time.perf_counter() - wall_start - blocked
        control_conn.send(("done", blob))
    except BaseException as exc:  # noqa: BLE001 - ship any failure home
        import traceback
        try:
            control_conn.send(("error", f"{exc}\n{traceback.format_exc()}"))
        finally:
            raise
    finally:
        control_conn.close()
        for conn in peer_conns.values():
            conn.close()


def _run_forked(layout: ShardLayout, config: SystemConfig,
                programs: Sequence[Program],
                initial_memory: Optional[Dict[int, int]], fastpath: bool,
                fault_plan: Optional[FaultPlan],
                node_plan: Optional[NodeFaultPlan], lookahead: int,
                max_events: int,
                max_cycles: Optional[int]) -> Tuple[List[dict], dict]:
    ctx = multiprocessing.get_context("fork")
    n = layout.n_shards
    # Per-pair duplex pipes (FIFO channels) + a control pipe per worker.
    pair_conns: List[Dict[int, Any]] = [dict() for _ in range(n)]
    for i in range(n):
        for j in range(i + 1, n):
            end_i, end_j = ctx.Pipe(duplex=True)
            pair_conns[i][j] = end_i
            pair_conns[j][i] = end_j
    controls = []
    workers = []
    try:
        for index in range(n):
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_worker_main,
                args=(index, layout, config, programs, initial_memory,
                      fastpath, fault_plan, node_plan, lookahead,
                      max_events, max_cycles, pair_conns[index], child_conn),
                daemon=True)
            proc.start()
            child_conn.close()
            controls.append(parent_conn)
            workers.append(proc)
        # The parent only holds pair-pipe ends so a worker crash cannot
        # hang its peers on a half-open pipe; close them now that every
        # worker inherited its own copies.
        for conns in pair_conns:
            for conn in conns.values():
                conn.close()
        blobs: List[Optional[dict]] = [None] * n
        for index, conn in enumerate(controls):
            try:
                status, payload = conn.recv()
            except EOFError:
                raise SimulationError(
                    f"shard worker {index} died without reporting "
                    f"(exit code {workers[index].exitcode})") from None
            if status == "error":
                raise SimulationError(
                    f"shard worker {index} failed:\n{payload}")
            blobs[index] = payload
        for proc in workers:
            proc.join(timeout=30)
        epochs = max(blob["epochs"] for blob in blobs)
        return blobs, {
            "mode": "fork",
            "epochs": epochs,
            "crossings": sum(blob["crossings"] for blob in blobs),
            "busy_seconds": [blob["busy_seconds"] for blob in blobs],
        }
    finally:
        for proc in workers:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)
        for conn in controls:
            conn.close()


# ---------------------------------------------------------- entry point

def run_sharded(config: SystemConfig, programs: Sequence[Program],
                initial_memory: Optional[Dict[int, int]] = None,
                shards: int = 2, fastpath: bool = True,
                fault_plan: Optional[FaultPlan] = None,
                node_plan: Optional[NodeFaultPlan] = None,
                max_events: int = DEFAULT_MAX_EVENTS,
                max_cycles: Optional[int] = None,
                mode: str = "auto") -> SystemResult:
    """Run the machine partitioned over ``shards`` workers.

    ``mode``: ``"fork"`` (worker processes), ``"inline"`` (same epoch
    protocol, one process -- the bit-identical reference), or ``"auto"``
    (fork when possible, inline inside daemonic workers where forking
    is forbidden).  Returns a :class:`SystemResult` indistinguishable
    from a serial run's, with a ``.sharding`` telemetry attribute.
    """
    if len(programs) != config.n_cores:
        raise ValueError(
            f"need exactly {config.n_cores} programs, got {len(programs)}")
    if shards < 1:
        raise ShardingError("shards must be >= 1")
    if shards > config.n_cores:
        raise ShardingError(
            f"cannot split {config.n_cores} cores over {shards} shards")
    if mode not in ("auto", "fork", "inline"):
        raise ShardingError(f"unknown mode {mode!r}")

    if shards == 1:
        # One shard is the serial machine: run it directly (no epochs).
        shard = _Shard(0, ShardLayout(config, 1), config, programs,
                       initial_memory, fastpath, fault_plan, node_plan)
        shard.start()
        shard.sim.run(max_events=max_events, max_cycles=max_cycles)
        blob = shard.result_blob()
        return _merge_result(config, [blob],
                             {"mode": "single", "epochs": 0, "shards": 1})

    if config.speculation.enabled and config.speculation.commit_arbitration:
        raise ShardingError(
            "commit arbitration is a global synchronous arbiter and "
            "cannot be sharded; run it on the serial engine")
    if fault_plan is not None and fault_plan.active \
            and fault_plan.rng_scope != "pair":
        raise ShardingError(
            "active fault plans under sharding need rng_scope='pair': "
            "a global-scope RNG is consumed in global send order, which "
            "no shard can observe")
    lookahead = _lookahead(config)
    if lookahead < 1:
        raise ShardingError(
            "sharding needs interconnect lookahead >= 1 cycle "
            "(crossbar link_latency or mesh_hop_latency); got "
            f"{lookahead}")
    if node_plan is not None and node_plan.active:
        for fault in node_plan.faults:
            if fault.core >= config.n_cores:
                raise ValueError(
                    f"node fault targets core {fault.core}, but the "
                    f"system has only {config.n_cores} cores")

    layout = ShardLayout(config, shards)
    if mode == "auto":
        daemon = multiprocessing.current_process().daemon
        mode = "inline" if daemon else "fork"

    if mode == "fork":
        blobs, telemetry = _run_forked(
            layout, config, programs, initial_memory, fastpath, fault_plan,
            node_plan, lookahead, max_events, max_cycles)
    else:
        all_shards = [_Shard(i, layout, config, programs, initial_memory,
                             fastpath, fault_plan, node_plan)
                      for i in range(shards)]
        telemetry = _run_inline(all_shards, lookahead, max_events, max_cycles)
        telemetry["mode"] = "inline"
        blobs = [shard.result_blob() for shard in all_shards]
    telemetry["shards"] = shards
    telemetry["lookahead"] = lookahead
    return _merge_result(config, blobs, telemetry)

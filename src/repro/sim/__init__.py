"""Discrete-event simulation substrate.

This subpackage provides the machinery every other subsystem is built on:

* :mod:`repro.sim.engine` -- a deterministic discrete-event simulator
  (event queue, simulated clock, scheduling primitives).
* :mod:`repro.sim.stats` -- counters, accumulators and histograms with a
  hierarchical registry, used for all measurements reported by the
  benchmark harness.
* :mod:`repro.sim.config` -- validated dataclass configuration for every
  hardware structure in the simulated system.
"""

from repro.sim.engine import Event, Simulator
from repro.sim.stats import Accumulator, Counter, Histogram, StatsRegistry
from repro.sim.config import (
    CacheConfig,
    ConsistencyModel,
    CoreConfig,
    InterconnectConfig,
    MemoryConfig,
    SpeculationConfig,
    SpeculationMode,
    SystemConfig,
)

__all__ = [
    "Event",
    "Simulator",
    "Accumulator",
    "Counter",
    "Histogram",
    "StatsRegistry",
    "CacheConfig",
    "ConsistencyModel",
    "CoreConfig",
    "InterconnectConfig",
    "MemoryConfig",
    "SpeculationConfig",
    "SpeculationMode",
    "SystemConfig",
]

"""Validated configuration for every structure in the simulated machine.

The defaults follow the paper-era system (InvisiFence, ISCA 2009,
Table-2-style parameters) scaled to what a Python event-driven simulator
can run in reasonable time: private split L1s (we model the D-side),
an inclusive shared L2 that also hosts the coherence directory, an
invalidation-based MESI protocol, and a crossbar interconnect.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace


class ConsistencyModel(enum.Enum):
    """The memory consistency model enforced at each core.

    * ``SC``  -- sequential consistency: program order among all memory
      operations; a store must be globally visible before the next memory
      operation issues.
    * ``TSO`` -- total store order (SPARC TSO / x86-like): stores retire
      into a FIFO store buffer and loads may bypass it; only atomics and
      StoreLoad fences drain the buffer.
    * ``RMO`` -- relaxed memory order: loads and stores are unordered
      except across explicit fences (and atomics).
    """

    SC = "sc"
    TSO = "tso"
    RMO = "rmo"


class SpeculationMode(enum.Enum):
    """InvisiFence operating mode.

    * ``NONE`` -- speculation disabled (the conventional baseline).
    * ``ON_DEMAND`` -- enter speculation only when an ordering constraint
      would otherwise stall the core (minimises rollback exposure).
    * ``CONTINUOUS`` -- always speculating, checkpoint-to-checkpoint,
      decoupling consistency enforcement from the core entirely.
    """

    NONE = "none"
    ON_DEMAND = "on-demand"
    CONTINUOUS = "continuous"


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(message)


def _is_pow2(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level."""

    size_bytes: int = 64 * 1024
    assoc: int = 4
    block_bytes: int = 64
    hit_latency: int = 2

    def __post_init__(self) -> None:
        _require(_is_pow2(self.block_bytes), f"block_bytes must be a power of two, got {self.block_bytes}")
        _require(self.size_bytes % (self.block_bytes * self.assoc) == 0,
                 "size_bytes must be divisible by block_bytes * assoc")
        _require(self.assoc >= 1, "assoc must be >= 1")
        _require(self.hit_latency >= 1, "hit_latency must be >= 1")
        _require(_is_pow2(self.n_sets), f"number of sets must be a power of two, got {self.n_sets}")

    @property
    def n_blocks(self) -> int:
        return self.size_bytes // self.block_bytes

    @property
    def n_sets(self) -> int:
        return self.n_blocks // self.assoc

    @property
    def offset_bits(self) -> int:
        return self.block_bytes.bit_length() - 1

    def block_of(self, addr: int) -> int:
        """Block-aligned address containing ``addr``."""
        return addr & ~(self.block_bytes - 1)

    def set_index(self, addr: int) -> int:
        return (addr >> self.offset_bits) & (self.n_sets - 1)


@dataclass(frozen=True)
class MemoryConfig:
    """Shared L2 / directory / DRAM timing."""

    l2_hit_latency: int = 12
    dram_latency: int = 120
    directory_latency: int = 4

    def __post_init__(self) -> None:
        _require(self.l2_hit_latency >= 1, "l2_hit_latency must be >= 1")
        _require(self.dram_latency >= 1, "dram_latency must be >= 1")
        _require(self.directory_latency >= 0, "directory_latency must be >= 0")


class Topology(enum.Enum):
    """Interconnect topology."""

    CROSSBAR = "crossbar"
    MESH = "mesh"


@dataclass(frozen=True)
class InterconnectConfig:
    """Interconnect topology and timing.

    The crossbar uses ``link_latency`` end-to-end; the 2D mesh pays
    ``mesh_hop_latency`` per hop with XY routing and per-link
    serialisation (congestion around the directory tile is modelled).
    """

    topology: Topology = Topology.CROSSBAR
    link_latency: int = 5
    port_issue_interval: int = 1
    mesh_hop_latency: int = 2

    def __post_init__(self) -> None:
        _require(self.link_latency >= 0, "link_latency must be >= 0")
        _require(self.port_issue_interval >= 1, "port_issue_interval must be >= 1")
        _require(self.mesh_hop_latency >= 1, "mesh_hop_latency must be >= 1")


@dataclass(frozen=True)
class CoreConfig:
    """Per-core pipeline and LSU parameters."""

    consistency: ConsistencyModel = ConsistencyModel.TSO
    store_buffer_entries: int = 8
    store_buffer_coalescing: bool = False
    alu_latency: int = 1
    atomic_latency: int = 1
    # Exclusive prefetching: while the head store drains, acquire write
    # permission for up to this many queued stores (0 disables).  The
    # writes still *apply* strictly in FIFO order, so TSO is preserved;
    # this is how real write buffers overlap store misses.
    store_prefetch_depth: int = 4

    def __post_init__(self) -> None:
        _require(self.store_buffer_entries >= 1, "store_buffer_entries must be >= 1")
        _require(self.alu_latency >= 1, "alu_latency must be >= 1")
        _require(self.atomic_latency >= 1, "atomic_latency must be >= 1")
        _require(self.store_prefetch_depth >= 0, "store_prefetch_depth must be >= 0")


class ViolationGranularity(enum.Enum):
    """Granularity at which incoming coherence traffic aborts speculation.

    ``BLOCK`` is the hardware-faithful choice (SR/SW bits per L1 block);
    ``WORD`` is the idealised ablation that ignores false sharing.
    """

    BLOCK = "block"
    WORD = "word"


class RollbackStrategy(enum.Enum):
    """How speculatively written data is discarded on rollback.

    ``CLEAN_BEFORE_WRITE`` (the paper's design) writes a dirty block back
    to L2 before its first speculative write, so rollback just
    invalidates SW blocks.  ``VICTIM_BUFFER`` keeps the pre-speculation
    copy in a small victim buffer and restores from it (an ablation).
    """

    CLEAN_BEFORE_WRITE = "clean-before-write"
    VICTIM_BUFFER = "victim-buffer"


@dataclass(frozen=True)
class SpeculationConfig:
    """InvisiFence mechanism parameters."""

    mode: SpeculationMode = SpeculationMode.NONE
    rollback_penalty: int = 8
    commit_latency: int = 1
    conservative_window: int = 32
    max_rollbacks_before_stall: int = 2
    granularity: ViolationGranularity = ViolationGranularity.BLOCK
    rollback_strategy: RollbackStrategy = RollbackStrategy.CLEAN_BEFORE_WRITE
    victim_buffer_entries: int = 16
    continuous_commit_interval: int = 64
    # Chunk-based prior-design baseline (E7): commits serialise through a
    # global arbiter instead of completing locally.
    commit_arbitration: bool = False
    arbitration_latency: int = 24

    def __post_init__(self) -> None:
        _require(self.rollback_penalty >= 0, "rollback_penalty must be >= 0")
        _require(self.commit_latency >= 0, "commit_latency must be >= 0")
        _require(self.conservative_window >= 0, "conservative_window must be >= 0")
        _require(self.max_rollbacks_before_stall >= 1,
                 "max_rollbacks_before_stall must be >= 1")
        _require(self.victim_buffer_entries >= 1, "victim_buffer_entries must be >= 1")
        _require(self.continuous_commit_interval >= 1,
                 "continuous_commit_interval must be >= 1")
        _require(self.arbitration_latency >= 1, "arbitration_latency must be >= 1")

    @property
    def enabled(self) -> bool:
        return self.mode is not SpeculationMode.NONE


@dataclass(frozen=True)
class SystemConfig:
    """Top-level configuration wiring the whole machine together."""

    n_cores: int = 8
    l1: CacheConfig = field(default_factory=CacheConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    interconnect: InterconnectConfig = field(default_factory=InterconnectConfig)
    core: CoreConfig = field(default_factory=CoreConfig)
    speculation: SpeculationConfig = field(default_factory=SpeculationConfig)
    seed: int = 1
    # Trace-compiled execution: at program load each core fuses maximal
    # straight-line runs of pure ALU/branch-free instructions into single
    # superblock closures that update the register file and pc in one
    # event, touching the scheduler only at memory/ordering boundaries
    # (see docs/PERF.md).  Semantically invisible -- the golden and
    # fastpath-vs-compat determinism suites prove it -- and only active
    # on the real fast-path engine: the compat engine (fastpath=False)
    # forces it off so the equivalence proof keeps a per-instruction
    # reference to compare against.
    superblocks: bool = True
    # Debug mode for the memory-system fast path: keep the historical
    # list(...) copy at every block transfer whose fast path transfers
    # ownership instead (evictions, invalidation acks, fills, directory
    # intake).  Results must be bit-identical with the flag on or off --
    # the determinism suite proves the elision creates no live aliases.
    debug_copy_blocks: bool = False
    # Number of directory home nodes.  1 keeps the historical single
    # directory at node id n_cores; H > 1 spreads directory state over
    # nodes n_cores..n_cores+H-1 via the consistent-hash home map
    # (repro.coherence.homemap), which is what lets the sharded engine
    # give each shard its own slice of the directory.
    n_homes: int = 1

    def __post_init__(self) -> None:
        _require(self.n_cores >= 1, "n_cores must be >= 1")
        _require(self.n_homes >= 1, "n_homes must be >= 1")

    def with_consistency(self, model: ConsistencyModel) -> "SystemConfig":
        """A copy of this config running the given consistency model."""
        return replace(self, core=replace(self.core, consistency=model))

    def with_speculation(self, mode: SpeculationMode, **kwargs) -> "SystemConfig":
        """A copy of this config with InvisiFence in the given mode."""
        return replace(self, speculation=replace(self.speculation, mode=mode, **kwargs))

    def with_cores(self, n_cores: int) -> "SystemConfig":
        return replace(self, n_cores=n_cores)

    def with_superblocks(self, enabled: bool) -> "SystemConfig":
        """A copy of this config with superblock fusion on/off."""
        return replace(self, superblocks=enabled)

    def with_homes(self, n_homes: int) -> "SystemConfig":
        """A copy of this config with ``n_homes`` directory home nodes."""
        return replace(self, n_homes=n_homes)

    def describe(self) -> str:
        """A one-line summary used in reports and benchmark labels."""
        spec = self.speculation.mode.value
        return (
            f"{self.n_cores} cores, {self.core.consistency.value.upper()}, "
            f"SB={self.core.store_buffer_entries}, "
            f"L1={self.l1.size_bytes // 1024}KB/{self.l1.assoc}way/{self.l1.block_bytes}B, "
            f"spec={spec}"
        )


def paper_table2_config() -> SystemConfig:
    """The default system, mirroring the paper's Table-2-style parameters.

    16 in-order cores is the paper's scale; we default experiments to 8
    for simulation speed and sweep up to 16 in the scaling study (E9).
    """
    return SystemConfig(
        n_cores=8,
        l1=CacheConfig(size_bytes=64 * 1024, assoc=4, block_bytes=64, hit_latency=2),
        memory=MemoryConfig(l2_hit_latency=12, dram_latency=120, directory_latency=4),
        interconnect=InterconnectConfig(link_latency=5),
        core=CoreConfig(consistency=ConsistencyModel.TSO, store_buffer_entries=8),
        speculation=SpeculationConfig(mode=SpeculationMode.NONE),
    )

"""Coherence-message tracing for debugging and protocol inspection.

``System.enable_tracing()`` installs a :class:`MessageTrace` that logs
every interconnect message (cycle, src, dst, type, address) into a
bounded ring buffer.  ``render()`` pretty-prints it;
``filter(addr=...)`` extracts one block's transaction history -- the
first tool to reach for when a protocol question comes up.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, NamedTuple, Optional


class TraceEntry(NamedTuple):
    cycle: int
    src: int
    dst: int
    #: Raw message type as captured at record time: a MessageType member,
    #: a plain string, or the message's class when it carried no ``mtype``.
    #: Stringification is deferred to :attr:`mtype` so recording costs no
    #: enum ``.name`` lookup per message.
    mtype_raw: object
    addr: Optional[int]

    @property
    def mtype(self) -> str:
        """Message-type name, resolved lazily from :attr:`mtype_raw`."""
        raw = self.mtype_raw
        if type(raw) is str:
            return raw
        name = getattr(raw, "name", None)
        if isinstance(name, str):
            return name
        return getattr(raw, "__name__", str(raw))

    def format(self) -> str:
        addr = f"{self.addr:#8x}" if self.addr is not None else "        "
        return f"{self.cycle:>8d}  {self.src:>3d} -> {self.dst:<3d}  {self.mtype:<14s} {addr}"


class MessageTrace:
    """Bounded ring buffer of interconnect messages."""

    def __init__(self, limit: int = 10_000):
        if limit < 1:
            raise ValueError("trace limit must be >= 1")
        self.limit = limit
        self._entries: Deque[TraceEntry] = deque(maxlen=limit)
        self.dropped = 0

    def record(self, cycle: int, src: int, dst: int, msg) -> None:
        if len(self._entries) == self.limit:
            self.dropped += 1
        raw = getattr(msg, "mtype", None)
        if raw is None:
            raw = type(msg)
        self._entries.append(TraceEntry(cycle, src, dst, raw,
                                        getattr(msg, "addr", None)))

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> List[TraceEntry]:
        return list(self._entries)

    def filter(self, addr: Optional[int] = None, node: Optional[int] = None,
               mtype: Optional[str] = None) -> List[TraceEntry]:
        """Entries touching a block address / node / message type."""
        out = []
        for entry in self._entries:
            if addr is not None and entry.addr != addr:
                continue
            if node is not None and node not in (entry.src, entry.dst):
                continue
            if mtype is not None and entry.mtype != mtype:
                continue
            out.append(entry)
        return out

    def render(self, last: Optional[int] = None) -> str:
        entries = self.entries()
        if last is not None:
            entries = entries[-last:]
        header = f"{'cycle':>8s}  {'src':>3s}    {'dst':<3s}  {'type':<14s} {'addr':<8s}"
        lines = [header] + [e.format() for e in entries]
        if self.dropped:
            lines.append(f"... ({self.dropped} earlier entries dropped)")
        return "\n".join(lines)


def attach_trace(system, limit: int = 10_000) -> MessageTrace:
    """Wrap a System's interconnect ``send`` with a recorder."""
    trace = MessageTrace(limit)
    original_send = system.net.send

    def traced_send(src, dst, msg):
        trace.record(system.sim.now, src, dst, msg)
        original_send(src, dst, msg)

    system.net.send = traced_send
    return trace

"""Deterministic discrete-event simulation engine.

The whole simulated machine -- cores, cache controllers, the directory,
the interconnect -- is driven by a single :class:`Simulator` instance.
Components never busy-wait: they schedule callbacks at future cycles and
the engine dispatches them in (time, insertion-order) order, which makes
every run bit-for-bit deterministic for a given configuration and seed.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent or stuck state."""


class Event:
    """A scheduled callback.

    Events are ordered by ``(time, seq)`` where ``seq`` is a global
    monotonically increasing insertion counter; two events scheduled for
    the same cycle therefore fire in the order they were scheduled, which
    keeps the simulation deterministic.

    Events may be cancelled before they fire via :meth:`cancel`; a
    cancelled event is skipped by the dispatch loop.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: int, seq: int, fn: Callable[..., Any], args: Tuple[Any, ...]):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent this event from firing (no-op if it already fired)."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time} seq={self.seq} fn={getattr(self.fn, '__qualname__', self.fn)}{state}>"


class Simulator:
    """Discrete-event simulator with an integer cycle clock.

    Typical use::

        sim = Simulator()
        sim.schedule(10, some_callback, arg1, arg2)
        sim.run()           # dispatch until the event queue is empty
        print(sim.now)      # simulated cycles elapsed
    """

    def __init__(self) -> None:
        self._queue: List[Event] = []
        self._seq = itertools.count()
        self._now = 0
        self._events_dispatched = 0
        self._running = False

    @property
    def now(self) -> int:
        """Current simulated cycle."""
        return self._now

    @property
    def events_dispatched(self) -> int:
        """Total number of events executed so far."""
        return self._events_dispatched

    @property
    def pending_events(self) -> int:
        """Number of not-yet-fired (including cancelled) events."""
        return len(self._queue)

    def schedule(self, delay: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` cycles from now.

        ``delay`` must be >= 0; a delay of 0 runs later in the current
        cycle (after all previously scheduled same-cycle events).
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute cycle ``time`` (>= now)."""
        if time < self._now:
            raise ValueError(f"cannot schedule at cycle {time}; now is {self._now}")
        event = Event(time, next(self._seq), fn, args)
        heapq.heappush(self._queue, event)
        return event

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Dispatch events until the queue drains (or a limit is hit).

        Parameters
        ----------
        until:
            If given, stop once the clock would pass this cycle; events at
            exactly ``until`` still fire.  The clock always ends at
            ``until`` exactly: if the queue drains earlier, ``now`` is
            advanced to ``until`` (simulated time passes even when nothing
            is scheduled), and if later events remain, ``now`` stops at
            ``until`` without firing them.
        max_events:
            If given, stop after dispatching this many events.  Used as a
            watchdog: exceeding it raises :class:`SimulationError`, since a
            correct run of our workloads always drains the queue.

        Returns the simulated cycle at which the run stopped.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        dispatched = 0
        try:
            while self._queue:
                event = self._queue[0]
                if event.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and event.time > until:
                    self._now = until
                    break
                heapq.heappop(self._queue)
                self._now = event.time
                self._events_dispatched += 1
                dispatched += 1
                event.fn(*event.args)
                if max_events is not None and dispatched >= max_events:
                    raise SimulationError(
                        f"watchdog: exceeded {max_events} events at cycle {self._now}; "
                        "the simulated system is likely livelocked"
                    )
            else:
                # Queue drained before reaching ``until``: time still
                # passes, so the clock lands exactly on ``until``.
                if until is not None and self._now < until:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def step(self) -> bool:
        """Dispatch a single (non-cancelled) event.

        Returns True if an event fired, False if the queue was empty.
        """
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_dispatched += 1
            event.fn(*event.args)
            return True
        return False

    def drain_cancelled(self) -> None:
        """Remove cancelled events from the queue (housekeeping)."""
        self._queue = [e for e in self._queue if not e.cancelled]
        heapq.heapify(self._queue)

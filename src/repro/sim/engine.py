"""Deterministic discrete-event simulation engine.

The whole simulated machine -- cores, cache controllers, the directory,
the interconnect -- is driven by a single :class:`Simulator` instance.
Components never busy-wait: they schedule callbacks at future cycles and
the engine dispatches them in (time, insertion-order) order, which makes
every run bit-for-bit deterministic for a given configuration and seed.

Internally the queue is a *calendar of buckets*: one FIFO list per
pending cycle, indexed by a dict, plus a small min-heap holding each
live cycle once.  Scheduling is an O(1) list append (the heap is touched
only when a cycle gains its first event) and dispatch walks one bucket
at a time, so the per-event cost has no heap comparisons in it -- the
old global heapq paid an O(log n) chain of Python-level ``Event.__lt__``
calls on every push and pop.  Same-cycle FIFO order is exactly the old
(time, seq) order, so the overhaul is semantically invisible; the
ordering contract is spelled out in docs/PERF.md.

Two scheduling paths share the calendar:

* :meth:`Simulator.schedule` / :meth:`Simulator.schedule_at` allocate a
  cancellable :class:`Event` handle (the original API);
* :meth:`Simulator.schedule_fast` / :meth:`Simulator.schedule_fast_at`
  append a bare ``(fn, args)`` pair -- no handle, no allocation beyond
  the tuple -- for the ~90% of events that are never cancelled (core
  step events, L1 callbacks, message deliveries).

Cancelled :class:`Event` objects are skipped at dispatch; when they
outnumber half the pending queue the engine drains them automatically
(at a safe point, between buckets) so speculation-heavy runs cannot
accumulate dead queue entries.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

#: Auto-housekeeping floor: below this many cancelled events a drain
#: costs more than the dead entries do.
_AUTO_DRAIN_MIN_CANCELLED = 8


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent or stuck state."""


class Event:
    """A scheduled callback.

    Events are ordered by ``(time, seq)`` where ``seq`` is a global
    monotonically increasing insertion counter; two events scheduled for
    the same cycle therefore fire in the order they were scheduled, which
    keeps the simulation deterministic.  (The calendar queue realises the
    same order positionally -- ``seq`` survives as the tie-break key for
    direct ``Event`` comparisons and for debugging.)

    Events may be cancelled before they fire via :meth:`cancel`; a
    cancelled event is skipped by the dispatch loop.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_sim")

    def __init__(self, time: int, seq: int, fn: Callable[..., Any], args: Tuple[Any, ...]):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._sim: Optional["Simulator"] = None

    def cancel(self) -> None:
        """Prevent this event from firing (no-op if it already fired)."""
        if self.cancelled:
            return
        self.cancelled = True
        sim = self._sim
        if sim is not None:
            sim._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time} seq={self.seq} fn={getattr(self.fn, '__qualname__', self.fn)}{state}>"


class Simulator:
    """Discrete-event simulator with an integer cycle clock.

    Typical use::

        sim = Simulator()
        sim.schedule(10, some_callback, arg1, arg2)
        sim.run()           # dispatch until the event queue is empty
        print(sim.now)      # simulated cycles elapsed

    ``fastpath=False`` routes :meth:`schedule_fast` through the
    Event-allocating slow path; the dispatch order is identical either
    way (the determinism test suite runs every grid point both ways),
    it only exists to prove that equivalence.
    """

    def __init__(self, fastpath: bool = True) -> None:
        #: time -> FIFO list of entries (Event objects or (fn, args) pairs).
        self._buckets: dict = {}
        #: min-heap of times; each live bucket's time appears exactly once.
        self._times: List[int] = []
        self._seq = itertools.count()
        self._now = 0
        self._events_dispatched = 0
        self._running = False
        self._pending = 0
        self._cancelled = 0
        self._drain_pending = False
        #: True when schedule_fast really is the allocation-free path.
        #: Hot components (core closures, L1, crossbar) consult this once
        #: at construction/decode time and inline the bucket append
        #: directly; when False they fall back to calling the (shadowed,
        #: Event-allocating) schedule_fast so the compat proof still
        #: exercises the slow path end to end.
        self.fastpath = fastpath
        if not fastpath:
            # Shadow the fast-path methods with Event-allocating wrappers.
            self.schedule_fast = self._schedule_fast_compat   # type: ignore[method-assign]
            self.schedule_fast_at = self.schedule_at          # type: ignore[method-assign]

    @property
    def now(self) -> int:
        """Current simulated cycle."""
        return self._now

    @property
    def events_dispatched(self) -> int:
        """Total number of events executed so far.

        Updated at bucket granularity while :meth:`run` is dispatching:
        callbacks reading it mid-cycle see the count as of the start of
        the current cycle's bucket.
        """
        return self._events_dispatched

    @property
    def pending_events(self) -> int:
        """Number of not-yet-fired (including cancelled) events."""
        return self._pending

    @property
    def cancelled_events(self) -> int:
        """Number of cancelled events still occupying the queue."""
        return self._cancelled

    # ----------------------------------------------------------- scheduling

    def schedule(self, delay: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` cycles from now.

        ``delay`` must be >= 0; a delay of 0 runs later in the current
        cycle (after all previously scheduled same-cycle events).
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute cycle ``time`` (>= now)."""
        if time < self._now:
            raise ValueError(f"cannot schedule at cycle {time}; now is {self._now}")
        event = Event(time, next(self._seq), fn, args)
        event._sim = self
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = [event]
            heapq.heappush(self._times, time)
        else:
            bucket.append(event)
        self._pending += 1
        return event

    def schedule_fast(self, delay: int, fn: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget :meth:`schedule`: no :class:`Event` handle.

        Identical dispatch semantics (same (time, insertion-order)
        slot), but the entry cannot be cancelled.  This is the hot path
        for the dominant event classes -- core steps, cache callbacks,
        message deliveries -- none of which are ever cancelled (the core
        neutralises stale continuations with epoch guards instead).
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        time = self._now + delay
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = [(fn, args)]
            heapq.heappush(self._times, time)
        else:
            bucket.append((fn, args))
        self._pending += 1

    def schedule_fast_at(self, time: int, fn: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget :meth:`schedule_at` (see :meth:`schedule_fast`)."""
        if time < self._now:
            raise ValueError(f"cannot schedule at cycle {time}; now is {self._now}")
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = [(fn, args)]
            heapq.heappush(self._times, time)
        else:
            bucket.append((fn, args))
        self._pending += 1

    def _schedule_fast_compat(self, delay: int, fn: Callable[..., Any],
                              *args: Any) -> None:
        """schedule_fast body used when ``fastpath=False``: allocates a
        real Event so the slow path is exercised end to end."""
        self.schedule(delay, fn, *args)

    def advance_batched(self, elided: int) -> None:
        """Credit ``elided`` logical events executed inside one dispatch.

        Part of the batched-advance contract for trace-compiled
        execution (see :meth:`make_relay`): a caller that genuinely
        elides scheduler dispatches while executing a batch must credit
        them here so :attr:`events_dispatched` keeps counting *logical*
        events.  Superblock relays do not need it -- each relay entry IS
        a dispatched event, so the count matches the per-instruction
        engine with no correction -- but external batchers (and tests)
        use this as the documented entry point.

        The ``max_events`` watchdog budget intentionally counts only
        *dispatched* events: it bounds Python work per run, and credits
        cost none.
        """
        self._events_dispatched += elided

    @staticmethod
    def make_relay(deltas) -> tuple:
        """Build a reusable relay entry for a superblock's event cadence.

        The batched-advance hook for trace-compiled execution.  A fused
        superblock executes all of its instructions' *work* (register
        writes, pc, stats) in its head event, but it must not collapse
        the span's events into one dispatch: every bucket append in this
        engine happens at a definite moment, and the moment an entry is
        appended fixes its FIFO position among same-cycle events --
        which in turn fixes crossbar arbitration, hit/miss races, and
        therefore the fingerprint.  So the head schedules a *relay
        chain*: one zero-work entry per elided instruction, each
        appended exactly when the per-instruction engine would have
        appended that instruction's event.  The run loop advances relays
        inline (no Python call, no allocation -- the payload list and
        the entry tuple are reused across executions).

        Payload layout (mutable, rewritten by the head per execution):
        ``[deltas, idx, stop, final]`` where ``deltas[k]`` is the
        latency of the span's k-th instruction, ``idx`` is the slot the
        next relay stands in for, ``stop`` is the executed instruction
        count, and ``final`` is the prebuilt ``(fn, args)`` entry for
        the span's successor.  A relay at index ``idx`` fires at the
        same cycle as the elided instruction and appends either the next
        relay (``idx + 1 < stop``) or ``final`` at ``now +
        deltas[idx]``.  Relays count as dispatched events, so
        :attr:`events_dispatched` matches the unfused engine exactly.
        """
        return (None, [tuple(deltas), 0, 0, None])

    # ------------------------------------------------------------- dispatch

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None,
            max_cycles: Optional[int] = None) -> int:
        """Dispatch events until the queue drains (or a limit is hit).

        Parameters
        ----------
        until:
            If given, stop once the clock would pass this cycle; events at
            exactly ``until`` still fire.  The clock always ends at
            ``until`` exactly: if the queue drains earlier, ``now`` is
            advanced to ``until`` (simulated time passes even when nothing
            is scheduled), and if later events remain, ``now`` stops at
            ``until`` without firing them.
        max_events:
            If given, stop after dispatching this many events.  Used as a
            watchdog: exceeding it raises :class:`SimulationError`, since a
            correct run of our workloads always drains the queue.
        max_cycles:
            Safety cap on simulated time: raise :class:`SimulationError`
            (with queue diagnostics) before firing any event past this
            cycle.  Off by default for library use; harness and fuzz
            entry points turn it on so a stuck run fails instead of
            spinning forever.

        Returns the simulated cycle at which the run stopped.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        dispatched = 0
        # Hot-loop locals: every per-event attribute walk avoided here is
        # paid millions of times per experiment point.
        buckets = self._buckets
        times = self._times
        heappop = heapq.heappop
        heappush = heapq.heappush
        event_cls = Event
        try:
            while times:
                time = times[0]
                if until is not None and time > until:
                    self._now = until
                    return until
                if max_cycles is not None and time > max_cycles:
                    raise SimulationError(
                        f"watchdog: next event is at cycle {time}, past "
                        f"max_cycles={max_cycles} "
                        f"({self._events_dispatched} events dispatched, "
                        f"{self._pending} pending); the simulated system "
                        f"is likely stuck"
                    )
                heappop(times)
                bucket = buckets[time]
                self._now = time
                # One comparison per event: the watchdog budget collapses
                # to a single int (a huge sentinel when unlimited -- an
                # int/int compare beats int/float).
                # ``fired`` is derived as consumed - skipped at the end:
                # skips (cancelled Events) are rare, so the budget check
                # compares against ``consumed`` directly (bumping the
                # threshold per skip) and the hot loop carries a single
                # counter instead of two.
                budget = (max_events - dispatched) if max_events is not None \
                    else (1 << 62)
                consumed = 0
                skipped = 0
                try:
                    # The list iterator re-reads the length on every step,
                    # so callbacks appending same-cycle events grow the
                    # bucket and the loop picks them up -- with C-level
                    # iteration instead of manual indexing.
                    for entry in bucket:
                        consumed += 1
                        if entry.__class__ is event_cls:
                            if entry.cancelled:
                                self._cancelled -= 1
                                skipped += 1
                                budget += 1
                                continue
                            entry._sim = None
                            fn = entry.fn
                            args = entry.args
                        else:
                            fn, args = entry
                            if fn is None:
                                # Superblock relay (see make_relay): stand
                                # in for one elided instruction's event --
                                # append the next hop (or the span's
                                # successor) at exactly the moment the
                                # per-instruction engine would have.
                                idx = args[1]
                                t2 = time + args[0][idx]
                                idx += 1
                                if idx == args[2]:
                                    nxt = args[3]
                                else:
                                    args[1] = idx
                                    nxt = entry
                                b2 = buckets.get(t2)
                                if b2 is None:
                                    buckets[t2] = [nxt]
                                    heappush(times, t2)
                                else:
                                    b2.append(nxt)
                                self._pending += 1
                                if consumed >= budget:
                                    raise SimulationError(
                                        f"watchdog: exceeded {max_events} events at cycle "
                                        f"{self._now}; the simulated system is likely livelocked"
                                    )
                                continue
                        fn(*args)
                        if consumed >= budget:
                            raise SimulationError(
                                f"watchdog: exceeded {max_events} events at cycle "
                                f"{self._now}; the simulated system is likely livelocked"
                            )
                finally:
                    fired = consumed - skipped
                    self._pending -= consumed
                    self._events_dispatched += fired
                    dispatched += fired
                    if consumed < len(bucket):
                        # Aborted mid-bucket (exception in a callback or the
                        # watchdog): keep the unconsumed tail dispatchable.
                        del bucket[:consumed]
                        heapq.heappush(times, time)
                    else:
                        del buckets[time]
                if self._drain_pending:
                    self._drain_now()
            # Queue drained before reaching ``until``: time still passes,
            # so the clock lands exactly on ``until``.
            if until is not None and self._now < until:
                self._now = until
            return self._now
        finally:
            self._running = False

    def step(self) -> bool:
        """Dispatch a single (non-cancelled) event.

        Returns True if an event fired, False if the queue was empty.
        """
        while self._times:
            time = self._times[0]
            bucket = self._buckets[time]
            while bucket:
                entry = bucket.pop(0)
                self._pending -= 1
                if entry.__class__ is Event:
                    if entry.cancelled:
                        self._cancelled -= 1
                        continue
                    entry._sim = None
                    fn, args = entry.fn, entry.args
                else:
                    fn, args = entry
                if not bucket:
                    heapq.heappop(self._times)
                    del self._buckets[time]
                self._now = time
                self._events_dispatched += 1
                if fn is None:
                    # Superblock relay entry (see make_relay).
                    idx = args[1]
                    t2 = time + args[0][idx]
                    idx += 1
                    if idx == args[2]:
                        nxt = args[3]
                    else:
                        args[1] = idx
                        nxt = entry
                    b2 = self._buckets.get(t2)
                    if b2 is None:
                        self._buckets[t2] = [nxt]
                        heapq.heappush(self._times, t2)
                    else:
                        b2.append(nxt)
                    self._pending += 1
                    return True
                fn(*args)
                return True
            heapq.heappop(self._times)
            del self._buckets[time]
        return False

    # --------------------------------------------------------- housekeeping

    def _note_cancelled(self) -> None:
        """Called by :meth:`Event.cancel`; triggers auto-housekeeping once
        cancelled events outnumber half the pending queue."""
        self._cancelled += 1
        if (self._cancelled >= _AUTO_DRAIN_MIN_CANCELLED
                and self._cancelled * 2 > self._pending):
            if self._running:
                self._drain_pending = True  # drained at the next bucket boundary
            else:
                self._drain_now()

    def drain_cancelled(self) -> None:
        """Remove cancelled events from the queue (housekeeping).

        Runs immediately when the simulator is idle; during :meth:`run`
        it is deferred to the next bucket boundary (the dispatch loop
        may be mid-way through the current cycle's FIFO).
        """
        if self._running:
            self._drain_pending = True
        else:
            self._drain_now()

    def _drain_now(self) -> None:
        self._drain_pending = False
        if not self._cancelled:
            return
        removed = 0
        for time, bucket in self._buckets.items():
            kept = [entry for entry in bucket
                    if entry.__class__ is not Event or not entry.cancelled]
            if len(kept) != len(bucket):
                removed += len(bucket) - len(kept)
                bucket[:] = kept   # in place: run() may hold a reference
        self._pending -= removed
        self._cancelled -= removed

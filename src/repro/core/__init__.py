"""InvisiFence: the paper's primary contribution.

Post-retirement speculation that makes memory ordering, fences, and
atomic operations performance-transparent on a conventional
invalidation-based multiprocessor:

* :mod:`repro.core.checkpoint` -- lightweight register checkpoints;
* :mod:`repro.core.invisifence` -- the speculation controller (entry
  policy per mode, commit condition, violation/rollback bookkeeping,
  forward-progress guarantee);
* :mod:`repro.core.storage` -- the hardware storage-cost model behind
  the paper's "~1 KB, independent of speculation depth" claim, including
  the per-store prior-design comparison.

The L1-side mechanics (SR/SW bits, clean-before-write, violation
detection) live in :class:`repro.coherence.l1.L1Cache`; the controller
here owns the policy and the architectural state.
"""

from repro.core.checkpoint import Checkpoint
from repro.core.invisifence import InvisiFenceController, SpecState, SpecTrigger
from repro.core.storage import StorageModel, invisifence_storage_bits, per_store_storage_bits
from repro.coherence.l1 import ViolationReason

__all__ = [
    "Checkpoint",
    "InvisiFenceController",
    "SpecState",
    "SpecTrigger",
    "StorageModel",
    "invisifence_storage_bits",
    "per_store_storage_bits",
    "ViolationReason",
]

"""Register checkpoints for post-retirement speculation.

InvisiFence needs exactly one architectural checkpoint per core (two in
some continuous-mode variants): registers + PC, taken at an instruction
boundary.  The memory side needs *no* checkpoint storage -- that is the
paper's central storage argument -- because speculative memory state is
tracked in the L1 itself via SR/SW bits and clean-before-write.
"""

from __future__ import annotations

from typing import List, Optional

from repro.isa.instructions import REG_COUNT


class Checkpoint:
    """A snapshot of one core's architectural state.

    ``regs=None`` marks an *incremental* checkpoint: the core journals
    (reg, old_value) pairs as it speculates and restores by replaying
    the undo log, so taking the checkpoint copies nothing.  The modelled
    hardware cost is unchanged -- a real implementation still shadows
    the full register file.
    """

    __slots__ = ("regs", "pc", "taken_at_cycle", "taken_at_instruction")

    def __init__(self, regs: Optional[List[int]], pc: int, taken_at_cycle: int,
                 taken_at_instruction: int):
        self.regs = list(regs) if regs is not None else None
        self.pc = pc
        self.taken_at_cycle = taken_at_cycle
        self.taken_at_instruction = taken_at_instruction

    def storage_bits(self) -> int:
        """Hardware cost of holding this checkpoint (64-bit regs + PC)."""
        n_regs = REG_COUNT if self.regs is None else len(self.regs)
        return (n_regs + 1) * 64

    def __repr__(self) -> str:
        return (f"<Checkpoint pc={self.pc} cycle={self.taken_at_cycle} "
                f"instr={self.taken_at_instruction}>")

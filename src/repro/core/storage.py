"""Hardware storage-cost models (the paper's ~1 KB claim, Table E6).

InvisiFence's speculative state is *block-granular and bounded by the
L1 geometry*: two bits (SR/SW) per L1 data block plus one register
checkpoint, regardless of how many stores are in flight.  Prior
per-store post-retirement designs keep an entry per speculative store,
so their storage grows linearly with speculation depth.  These models
quantify both, and back the E6 benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.isa.instructions import REG_COUNT
from repro.sim.config import CacheConfig

#: Bits in one register checkpoint (GPRs + PC), per core.
CHECKPOINT_BITS = (REG_COUNT + 1) * 64

#: Miscellaneous controller state: trigger PC, drain target counter,
#: violation counters, mode/status register (generous round number).
CONTROLLER_MISC_BITS = 128


def invisifence_storage_bits(l1: CacheConfig, checkpoints: int = 1) -> int:
    """Per-core InvisiFence storage in bits: independent of speculation depth.

    2 bits per L1 block (SR/SW) + register checkpoint(s) + misc control.
    """
    sr_sw_bits = 2 * l1.n_blocks
    return sr_sw_bits + checkpoints * CHECKPOINT_BITS + CONTROLLER_MISC_BITS


def per_store_storage_bits(speculation_depth: int, address_bits: int = 48,
                           data_bits: int = 64) -> int:
    """Per-core storage of a per-store-granularity speculation design.

    Each in-flight speculative store needs address + data + valid/status
    bits (we charge 8 status bits), so storage grows linearly with the
    supported speculation depth -- the scaling InvisiFence avoids.
    """
    if speculation_depth < 0:
        raise ValueError("speculation depth must be >= 0")
    per_entry = address_bits + data_bits + 8
    return CHECKPOINT_BITS + speculation_depth * per_entry


@dataclass(frozen=True)
class StorageModel:
    """Bundled storage accounting for one configuration (per core)."""

    l1: CacheConfig
    checkpoints: int = 1

    def breakdown_bits(self) -> Dict[str, int]:
        return {
            "sr_sw_bits": 2 * self.l1.n_blocks,
            "checkpoint_bits": self.checkpoints * CHECKPOINT_BITS,
            "controller_misc_bits": CONTROLLER_MISC_BITS,
        }

    @property
    def total_bits(self) -> int:
        return sum(self.breakdown_bits().values())

    @property
    def total_bytes(self) -> float:
        return self.total_bits / 8

    def report(self) -> str:
        lines = [f"InvisiFence per-core storage ({self.l1.size_bytes // 1024} KB L1, "
                 f"{self.l1.block_bytes} B blocks):"]
        for name, bits in self.breakdown_bits().items():
            lines.append(f"  {name:<24s} {bits:>8d} bits ({bits / 8:.0f} B)")
        lines.append(f"  {'total':<24s} {self.total_bits:>8d} bits "
                     f"({self.total_bytes:.0f} B)")
        return "\n".join(lines)

"""The InvisiFence speculation controller.

One controller per core.  It owns the *policy* of post-retirement
speculation -- when to enter (mode-dependent), when to commit, how to
guarantee forward progress after violations -- while the mechanics are
split between the core (checkpoint/restore, store-buffer squash) and
the L1 (SR/SW tracking, clean-before-write, violation detection).

Forward progress: after a violation the core re-executes from the
checkpoint *conservatively* (speculation disabled) for a window of
instructions, so the ordering stall that triggered speculation is taken
for real and the conflicting access completes.  Repeated violations at
the same checkpoint PC grow the window exponentially (capped), which
bounds livelock even under adversarial conflict patterns.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional

from repro.coherence.l1 import ViolationReason
from repro.core.checkpoint import Checkpoint
from repro.sim.config import SpeculationConfig, SpeculationMode
from repro.sim.stats import StatsRegistry

#: Cap on the conservative-window growth factor after repeated violations.
MAX_WINDOW_SCALE = 64


class SpecState(enum.Enum):
    IDLE = "idle"
    ACTIVE = "active"


class SpecTrigger(enum.Enum):
    """What ordering constraint the speculation absorbed."""

    FENCE = "fence"
    ATOMIC = "atomic"
    SC_ORDER = "sc-order"
    CONTINUOUS = "continuous"


class InvisiFenceController:
    """Per-core speculation policy and bookkeeping."""

    def __init__(self, config: SpeculationConfig, stats: StatsRegistry, core_id: int):
        self.config = config
        #: Plain attribute, not a property: the core reads it on every
        #: instruction (see Core._step), so the lookup must stay cheap.
        self.active = False
        self.checkpoint: Optional[Checkpoint] = None
        self.trigger: Optional[SpecTrigger] = None
        self.instructions_since_checkpoint = 0
        self._conservative_remaining = 0
        self._violations_at_pc: Dict[int, int] = {}

        prefix = f"spec.{core_id}"
        self.stat_episodes = stats.counter(f"{prefix}.episodes")
        self.stat_commits = stats.counter(f"{prefix}.commits")
        self.stat_violations = stats.counter(f"{prefix}.violations")
        self.stat_violations_by_reason = {
            reason: stats.counter(f"{prefix}.violations.{reason.value}")
            for reason in ViolationReason
        }
        self.stat_wasted_instructions = stats.counter(f"{prefix}.wasted_instructions")
        self.stat_episode_cycles = stats.histogram(f"{prefix}.episode_cycles", log2=True)
        self.stat_footprint_blocks = stats.histogram(f"{prefix}.footprint_blocks", log2=True)
        self.stat_conservative_entries = stats.counter(f"{prefix}.conservative_entries")
        # Speculative stores per episode: feeds the per-store prior-design
        # coverage analysis (E6) -- their storage must scale with this.
        self.stat_episode_stores = stats.histogram(f"{prefix}.episode_stores")
        self._episode_stores = 0

    # -------------------------------------------------------------- policy

    @property
    def state(self) -> SpecState:
        return SpecState.ACTIVE if self.active else SpecState.IDLE

    @property
    def conservative(self) -> bool:
        """True while the forward-progress window forbids speculation."""
        return self._conservative_remaining > 0

    def can_speculate(self) -> bool:
        """May a new speculation episode start right now?"""
        return self.config.enabled and not self.active and not self.conservative

    def wants_continuous_entry(self) -> bool:
        """Continuous mode re-enters speculation at every opportunity."""
        return (self.config.mode is SpeculationMode.CONTINUOUS
                and self.can_speculate())

    # ----------------------------------------------------------- lifecycle

    def enter(self, checkpoint: Checkpoint, trigger: SpecTrigger) -> None:
        if self.active:
            raise RuntimeError("speculation already active")
        if self.conservative:
            raise RuntimeError("cannot speculate inside the conservative window")
        self.active = True
        self.checkpoint = checkpoint
        self.trigger = trigger
        self.instructions_since_checkpoint = 0
        self._episode_stores = 0
        self.stat_episodes.increment()

    def note_instruction(self) -> None:
        """Called by the core once per executed instruction."""
        if self.active:
            self.instructions_since_checkpoint += 1
        if self._conservative_remaining > 0:
            self._conservative_remaining -= 1

    def note_speculative_store(self) -> None:
        """Called by the core when a speculative store enters the buffer."""
        if self.active:
            self._episode_stores += 1

    def should_commit(self, sb_empty: bool, at_drain: bool) -> bool:
        """Commit condition: every buffered store is globally performed.

        On-demand mode commits as soon as the buffer drains; continuous
        mode additionally commits at instruction boundaries once the
        checkpoint interval has elapsed (bounding the violation-exposure
        window while the store buffer happens to be empty).
        """
        if not self.active or not sb_empty:
            return False
        if at_drain:
            return True
        if self.config.mode is SpeculationMode.CONTINUOUS:
            return (self.instructions_since_checkpoint
                    >= self.config.continuous_commit_interval)
        return True

    def commit(self, now: int, footprint_blocks: int) -> None:
        """Speculation succeeded: all of it becomes architectural."""
        if not self.active:
            raise RuntimeError("no active speculation to commit")
        assert self.checkpoint is not None
        self.stat_commits.increment()
        self.stat_episode_cycles.add(now - self.checkpoint.taken_at_cycle)
        self.stat_footprint_blocks.add(footprint_blocks)
        self.stat_episode_stores.add(self._episode_stores)
        self._violations_at_pc.pop(self.checkpoint.pc, None)
        self.active = False
        self.checkpoint = None
        self.trigger = None
        self.instructions_since_checkpoint = 0

    def on_violation(self, reason: ViolationReason, now: int) -> Checkpoint:
        """Speculation aborted: record it and return the restore point.

        Activates the conservative window (growing exponentially with
        repeated violations at the same checkpoint) so the re-execution
        makes forward progress non-speculatively.
        """
        if not self.active:
            raise RuntimeError("violation with no active speculation")
        assert self.checkpoint is not None
        checkpoint = self.checkpoint
        self.stat_violations.increment()
        self.stat_violations_by_reason[reason].increment()
        self.stat_wasted_instructions.increment(self.instructions_since_checkpoint)
        self.stat_episode_cycles.add(now - checkpoint.taken_at_cycle)
        self.stat_episode_stores.add(self._episode_stores)

        count = self._violations_at_pc.get(checkpoint.pc, 0) + 1
        self._violations_at_pc[checkpoint.pc] = count
        scale = min(2 ** (count - 1), MAX_WINDOW_SCALE)
        if count >= self.config.max_rollbacks_before_stall:
            self._conservative_remaining = self.config.conservative_window * scale
        else:
            self._conservative_remaining = self.config.conservative_window
        if self._conservative_remaining > 0:
            self.stat_conservative_entries.increment()

        self.active = False
        self.checkpoint = None
        self.trigger = None
        self.instructions_since_checkpoint = 0
        return checkpoint

"""E8: store-buffer-depth sensitivity.

Paper claims reproduced:
* the conventional TSO machine gains nothing from deeper store buffers
  on fence-bound code -- every fence drains the buffer regardless of
  its depth;
* InvisiFence converts buffer depth into performance (deeper buffers
  let speculation cover more rounds), yet needs very little of it: a
  single-entry buffer is within ~10% of a 32-entry one, because
  ordering enforcement is off the critical path.
"""

from repro.harness import e8_store_buffer


def test_e8_store_buffer(run_once):
    result = run_once(e8_store_buffer, n_cores=8, scale=1.0)
    print()
    print(result.render())

    base = {entries: pair[0].cycles for entries, pair in result.data.items()}
    invisi = {entries: pair[1].cycles for entries, pair in result.data.items()}

    # InvisiFence at least matches the baseline at every depth.
    for entries in base:
        assert invisi[entries] <= base[entries] * 1.02

    # The conventional machine is flat: fences drain whatever you build.
    assert max(base.values()) <= min(base.values()) * 1.05

    # InvisiFence monotonically exploits depth...
    assert invisi[32] <= invisi[1]
    # ...but needs almost none of it (shallow-buffer penalty < 10%).
    assert invisi[1] <= invisi[32] * 1.10

"""E13 deep fence synthesis: full default oracle axes over every
canonical litmus shape and both stronger targets.

The tier-1 suite synthesizes against a trimmed dynamic grid
(``tests/test_synth.py``); this benchmark runs the full default axes
-- every speculation mode, seeded skew retries, superblock fusion on
AND off -- and must still recover exactly the known-minimal fence
sets, across several seeds, with the static oracle never hitting its
witness cap.  It also regenerates the E13 table and asserts the cycle
economics: synthesized StoreLoad fences stall the machine with
speculation off, on-demand speculation wins the loss back, and the
directional fences MP/LB need are nearly free.
"""

import pytest

from repro.harness import e13_fence_synthesis
from repro.isa.instructions import FenceKind
from repro.sim.config import ConsistencyModel
from repro.verification.synth import synthesize_fences
from repro.workloads.litmus import canonical_litmus_ir

pytestmark = [pytest.mark.slow, pytest.mark.fuzz]

SC = ConsistencyModel.SC
TSO = ConsistencyModel.TSO

#: (workload, target) -> known-minimal fence set as (thread, kind) pairs.
EXPECTED = {
    ("sb", SC): [(0, FenceKind.STORE_LOAD), (1, FenceKind.STORE_LOAD)],
    ("sb", TSO): [],
    ("mp", SC): [(0, FenceKind.STORE_STORE), (1, FenceKind.LOAD_LOAD)],
    ("mp", TSO): [(0, FenceKind.STORE_STORE), (1, FenceKind.LOAD_LOAD)],
    ("lb", SC): [(0, FenceKind.LOAD_STORE), (1, FenceKind.LOAD_STORE)],
    ("lb", TSO): [(0, FenceKind.LOAD_STORE), (1, FenceKind.LOAD_STORE)],
}


@pytest.mark.parametrize("seed", [0, 7, 1234])
@pytest.mark.parametrize("name,target",
                         sorted(EXPECTED, key=lambda k: (k[0], k[1].value)))
def test_full_axes_recover_minimal_sets(name, target, seed):
    shapes = canonical_litmus_ir()
    res = synthesize_fences(shapes[name], target, seed=seed)
    assert res.sufficient, res.describe()
    assert not res.capped
    got = sorted((p.thread, p.kind) for p in res.placements)
    assert got == sorted(EXPECTED[(name, target)]), res.describe()


def test_determinism_across_full_axes():
    shapes = canonical_litmus_ir()
    runs = [synthesize_fences(shapes["mp"], SC, seed=5) for _ in range(2)]
    assert runs[0].placements == runs[1].placements
    assert runs[0].oracle_queries == runs[1].oracle_queries
    assert runs[0].dynamic_runs == runs[1].dynamic_runs


def test_e13_table(run_once):
    result = run_once(e13_fence_synthesis)
    print()
    print(result.render())
    by_key = {(r[0], r[1]): r for r in result.rows}
    assert len(result.rows) == 6
    for (name, target), expected in EXPECTED.items():
        row = by_key[(name, target.value.upper())]
        assert row[3] == len(expected)
        assert result.data[f"{name}-{target.value}"]["synthesis"].sufficient
    # Economics: SB's StoreLoad fences stall without speculation and
    # on-demand claws the stall back; MP/LB's directional fences are
    # nearly free (no drain on this machine).
    sb = by_key[("sb", "SC")]
    assert sb[5] > sb[4]
    assert sb[6] < sb[5]
    for name in ("mp", "lb"):
        row = by_key[(name, "SC")]
        assert row[5] - row[4] <= 4

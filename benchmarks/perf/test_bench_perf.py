"""Full-grid simulator-throughput measurements (pytest wrappers).

These are the heavyweight counterparts of the ``--check`` smoke test:
they run the canonical E1/E9 bench grids through
:mod:`repro.harness.bench` and print the same summary lines the CLI
emits.  Marked ``slow`` -- the default test pass excludes them
(``addopts = -m "not slow"`` in pyproject.toml); run explicitly with::

    PYTHONPATH=src python -m pytest benchmarks/perf -m slow -s

Set ``REPRO_BENCH_BASELINE=<path to BENCH_<n>.json>`` to also assert the
current engine is not slower than a recorded run (with the usual
fingerprint-identity check; a generous noise margin keeps this usable on
shared machines).
"""

import os

import pytest

from repro.harness.bench import (
    attach_baseline,
    bench_grids,
    default_grids,
    load_bench,
    render_bench,
    validate_bench,
)

#: Wall-clock noise tolerance for the optional baseline regression gate.
_SLOWDOWN_TOLERANCE = 0.7

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def bench_doc():
    # Full grids so the point labels line up with committed BENCH files.
    doc = bench_grids(default_grids(), repeats=2)
    validate_bench(doc)
    print()
    print(render_bench(doc))
    return doc


def test_full_grids_measure_cleanly(bench_doc):
    for grid_id in ("E1", "E9"):
        totals = bench_doc["grids"][grid_id]["totals"]
        assert totals["events"] > 0
        assert totals["events_per_sec"] > 0


def test_every_point_fingerprinted(bench_doc):
    for grid in bench_doc["grids"].values():
        for point in grid["points"]:
            assert len(point["fingerprint"]) == 64


def test_not_slower_than_recorded_baseline(bench_doc):
    baseline_path = os.environ.get("REPRO_BENCH_BASELINE")
    if not baseline_path:
        pytest.skip("set REPRO_BENCH_BASELINE=<BENCH_<n>.json> to enable")
    baseline = load_bench(baseline_path)
    # Only grids present in both docs are compared; attach_baseline also
    # enforces point-for-point fingerprint identity.
    attach_baseline(bench_doc, baseline)
    for grid_id, speedup in bench_doc["speedup"].items():
        assert speedup["events_per_sec"] >= _SLOWDOWN_TOLERANCE, (
            f"{grid_id}: engine is {1 / speedup['events_per_sec']:.2f}x "
            f"slower than {baseline_path}"
        )

"""E9: the transparency win persists as the machine grows.

Paper claims reproduced:
* base-SC's penalty over base-RMO does not disappear with more cores;
* IF-SC tracks base-RMO (within a modest bound) at every machine size,
  so the speedup of IF-SC over base-SC is stable or growing.
"""

from repro.harness import e9_scaling


def test_e9_scaling(run_once):
    result = run_once(e9_scaling, core_counts=(2, 4, 8, 16), scale=0.75)
    print()
    print(result.render())

    for (n, name), (base_sc, base_rmo, if_sc) in result.data.items():
        # IF-SC stays within 20% of the relaxed baseline at every size
        # (barrier workloads carry the arrival-conflict overhead, which
        # grows with arriver count at this microbenchmark's tiny
        # work-per-barrier ratio -- see EXPERIMENTS.md)...
        assert if_sc.cycles <= base_rmo.cycles * 1.20, (n, name)
        # ...and within the same bound of conventional SC (on barrier
        # code base-SC pays almost nothing, so the arrival-conflict
        # overhead is *relative to an already-cheap baseline*).
        assert if_sc.cycles <= base_sc.cycles * 1.20, (n, name)

    # The ticket-lock SC penalty exists at 16 cores and IF recovers it.
    base_sc, base_rmo, if_sc = result.data[(16, "locks-ticket")]
    assert base_sc.cycles > base_rmo.cycles * 1.05
    assert if_sc.cycles < base_sc.cycles

"""E1 (Fig. 1-style): ordering-stall breakdown of conventional machines.

Paper claims reproduced:
* SC loses a significant fraction of time to ordering on store-miss
  heavy workloads;
* TSO/RMO still lose time at fences and atomics (nonzero ordering even
  under the relaxed models, concentrated in fence/atomic categories).
"""

from repro.harness import e1_ordering_breakdown
from repro.sim.config import ConsistencyModel


def test_e1_ordering_breakdown(run_once):
    result = run_once(e1_ordering_breakdown, n_cores=8, scale=1.0)
    print()
    print(result.render())

    sc = {name: bd for (name, model), bd in result.data.items()
          if model == "sc"}
    relaxed = {name: bd for (name, model), bd in result.data.items()
               if model == "rmo"}

    # SC pays heavily where stores miss: the streaming workload is the
    # canonical case and must show a large ordering share.
    assert sc["streaming-writer"].ordering_fraction > 0.30

    # SC's total ordering time across the suite dominates RMO's.
    sc_total = sum(bd.ordering for bd in sc.values())
    rmo_total = sum(bd.ordering for bd in relaxed.values())
    assert sc_total > rmo_total

    # Even RMO pays something somewhere (fences on producer-consumer,
    # atomics on the lock workloads).
    assert any(bd.ordering_fraction > 0.01 for bd in relaxed.values())

    # Every breakdown conserves cycles exactly.
    for bd in result.data.values():
        bd.check_conservation()

"""E7: local flash commit vs chunk-style global commit arbitration.

Paper claims reproduced:
* InvisiFence's arbitration-free local commit outperforms a
  chunk-baseline whose commits serialise through a global arbiter;
* the arbitrated design additionally suffers more violations (its
  vulnerability windows extend while commit requests queue);
* the gap does not shrink as the machine grows.
"""

from repro.harness import e7_commit_arbitration


def test_e7_commit_arbitration(run_once):
    result = run_once(e7_commit_arbitration, scale=1.0,
                      core_counts=(2, 4, 8), arbitration_latency=40)
    print()
    print(result.render())

    slowdowns = {}
    for (n, name), (local, arb) in result.data.items():
        assert arb.cycles >= local.cycles * 0.999, (n, name)
        assert arb.violations() >= local.violations(), (n, name)
        slowdowns.setdefault(n, []).append(arb.cycles / local.cycles)

    # Arbitration costs real time somewhere at every machine size...
    mean8 = sum(slowdowns[8]) / len(slowdowns[8])
    assert mean8 > 1.02
    # ...and at the largest size the penalty has not vanished.
    mean2 = sum(slowdowns[2]) / len(slowdowns[2])
    assert mean8 >= mean2 * 0.9

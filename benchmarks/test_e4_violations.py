"""E4: where violations come from -- false sharing and capacity.

Paper claims reproduced:
* block-granularity tracking pays false-sharing aborts that the
  idealised word-granularity oracle avoids entirely;
* shrinking the L1 converts speculative footprint into
  capacity-eviction violations (block-granularity state is bounded by
  the cache).
"""

from repro.harness import e4_violations


def test_e4_violations(run_once):
    result = run_once(e4_violations, n_cores=4)
    print()
    print(result.render())

    block = result.data[("granularity", "block")]
    word = result.data[("granularity", "word")]
    # False sharing aborts appear only at block granularity.
    assert block.violations() > 0
    assert word.violations() == 0
    # Removing the aborts can only help runtime.
    assert word.cycles <= block.cycles

    # Capacity pressure: the smallest L1 must show capacity violations
    # that the full-size L1 avoids.
    def capacity_violations(run):
        return int(run.stats.sum(
            f"spec.{i}.violations.capacity-eviction" for i in range(4)))

    small = result.data[("l1_kb", 2)]
    large = result.data[("l1_kb", 64)]
    assert capacity_violations(small) > capacity_violations(large)
    assert capacity_violations(large) == 0

"""E2 (the headline figure): InvisiFence makes memory ordering
performance-transparent.

Paper claims reproduced:
* conventional SC is clearly slower than conventional RMO overall;
* InvisiFence-SC, -TSO, -RMO land within a few percent of one another;
* the InvisiFence variants run at (or below) conventional-RMO speed on
  average -- the geometric-mean overhead of strong ordering collapses.
"""

from benchmarks.conftest import geomean
from repro.harness import e2_transparency


def test_e2_transparency(run_once):
    result = run_once(e2_transparency, n_cores=8, scale=1.0)
    print()
    print(result.render())

    norm = {}
    for name, cycles in result.data.items():
        base = cycles["base-rmo"]
        norm[name] = {label: c / base for label, c in cycles.items()}

    # Conventional SC costs real time overall (>10% geomean).
    assert geomean(n["base-sc"] for n in norm.values()) > 1.10
    # At least one workload shows a dramatic (>1.5x) SC penalty.
    assert max(n["base-sc"] for n in norm.values()) > 1.5

    # InvisiFence recovers it: IF-SC within ~6% of base-RMO on average.
    assert geomean(n["if-sc"] for n in norm.values()) < 1.06
    # And the three IF variants are mutually close (transparency).
    for n in norm.values():
        assert abs(n["if-tso"] - n["if-rmo"]) < 0.02
    assert abs(geomean(n["if-sc"] for n in norm.values())
               - geomean(n["if-tso"] for n in norm.values())) < 0.05

    # Per workload, IF stays close to the conventional implementation of
    # its own model.  The tolerance covers the one residual overhead our
    # microbenchmark scale exposes: barrier-arrival conflicts land inside
    # SC-mode speculation windows on barrier-stencil (a fixed per-barrier
    # cost that amortises away at full workload scale; see EXPERIMENTS.md).
    for name, n in norm.items():
        assert n["if-sc"] <= n["base-sc"] * 1.15, name
        assert n["if-tso"] <= n["base-tso"] * 1.02, name
        assert n["if-rmo"] <= n["base-rmo"] * 1.02, name

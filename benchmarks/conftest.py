"""Benchmark harness configuration.

Each benchmark regenerates one of the paper's tables/figures via
``repro.harness`` and asserts its qualitative *shape* (who wins, by
roughly what factor).  Simulation runs are deterministic, so every
benchmark executes exactly once (``pedantic(rounds=1)``); the
pytest-benchmark timing column then reports how long regenerating that
artifact takes.

Run with:  pytest benchmarks/ --benchmark-only -s

Sweeps fan out over ``REPRO_JOBS`` worker processes when that variable
is set (e.g. ``REPRO_JOBS=4 pytest benchmarks/``): every experiment
callable reads it, and results are bit-identical to the serial run --
only the wall-clock changes.
"""

import math

import pytest


def geomean(values):
    values = list(values)
    return math.exp(sum(math.log(v) for v in values) / len(values))


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under the benchmark timer."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner

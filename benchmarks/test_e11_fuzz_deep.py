"""E11 deep consistency fuzzing: long seeded sweeps across the whole
model x speculation-mode x skew matrix.

The tier-1 suite runs a seconds-long smoke subset
(``tests/test_fuzz.py``); this benchmark goes wide -- hundreds of
random programs, three thread counts, every model -- and must find
*zero* violations on the faithful machine.  It also re-verifies that
both injected bugs are still caught at depth and that shrinking keeps
producing litmus-sized reproducers.
"""

import pytest

from repro.harness import e11_consistency_fuzz
from repro.sim.config import ConsistencyModel
from repro.verification.fuzz import fuzz_sweep

pytestmark = [pytest.mark.slow, pytest.mark.fuzz]


def test_e11_table(run_once):
    result = run_once(e11_consistency_fuzz, n_programs=10)
    print()
    print(result.render())
    faithful = [row for row in result.rows if row[0] == "faithful"]
    assert all(row[3] == 0 for row in faithful)
    broken = [row for row in result.rows if row[0].startswith("broken")]
    assert all(row[3] > 0 for row in broken)


@pytest.mark.parametrize("n_threads", [2, 3, 4])
def test_deep_clean_sweep(n_threads):
    report = fuzz_sweep(n_programs=60, seed=1000 + n_threads,
                        n_threads=n_threads, ops_per_thread=12,
                        skew_variants=3, stop_after=None)
    assert report.cases_run == 60 * len(ConsistencyModel) * 3 * 3
    assert report.clean, report.failures[0].message


@pytest.mark.parametrize("n_threads", [2, 3])
def test_deep_clean_sweep_superblocks_axis(n_threads):
    """Trace-compiled execution is invisible to the consistency checker.

    Every case runs twice -- superblocks on and off -- and the whole
    matrix must stay clean on the faithful machine either way.
    """
    report = fuzz_sweep(n_programs=30, seed=4200 + n_threads,
                        n_threads=n_threads, ops_per_thread=12,
                        skew_variants=2, stop_after=None,
                        superblocks_axis=(True, False))
    assert report.cases_run == 30 * len(ConsistencyModel) * 3 * 2 * 2
    assert report.clean, report.failures[0].message


def test_deep_injection_still_shrinks_small():
    report = fuzz_sweep(n_programs=40, seed=77, ops_per_thread=12,
                        models=[ConsistencyModel.SC],
                        inject="sc-load-no-drain", stop_after=3)
    assert report.failures
    for failure in report.failures:
        assert failure.shrunk.instruction_count() <= 12

"""E5: sensitivity to fence density and rollback penalty.

Paper claims reproduced:
* the InvisiFence speedup grows with fence density (the more the
  baseline stalls, the more speculation recovers);
* performance is robust across rollback penalties when violations are
  rare, degrading gracefully as the penalty grows on conflict-heavy
  code.
"""

from repro.harness import e5_sensitivity


def test_e5_sensitivity(run_once):
    result = run_once(e5_sensitivity, n_cores=8)
    print()
    print(result.render())

    density = {point: (base.cycles / invisi.cycles)
               for (kind, point), (base, invisi) in
               ((k, v) for k, v in result.data.items() if k[0] == "density")}
    # Monotone trend: denser fences -> bigger speedup; and the densest
    # point must show a substantial (>1.3x) win.
    assert density[1] > density[16]
    assert density[1] > 1.3
    assert density[16] >= 0.99  # sparse fences: no harm done

    # Rollback penalty: conflict-heavy false sharing degrades gracefully.
    penalties = {p: run for (kind, p), run in result.data.items()
                 if kind == "penalty"}
    assert penalties[0].cycles <= penalties[128].cycles

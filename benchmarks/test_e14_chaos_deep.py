"""E14 deep chaos: protocol safety under wide node + link fault grids.

The tier-1 suite runs the single-seed smoke subset
(``tests/test_node_faults.py``, ``tests/test_protocols.py``, and
``examples/run_chaos.py --selftest`` via ``tests/test_chaos_cli.py``);
this benchmark goes wide -- five chaos seeds across every node-fault
mode crossed with every link plan, each point holding its protocol
safety property (election safety, gossip convergence, log agreement)
under a liveness watchdog -- plus a replay proof that a deep chaos
grid is bit-for-bit deterministic.
"""

import pytest

from repro.harness import e14_chaos, execute_specs, result_fingerprint
from repro.harness.experiments import e14_plan

pytestmark = [pytest.mark.slow]

SEEDS = (0, 1, 2, 3, 4)


def test_e14_table(run_once):
    result = run_once(e14_chaos, seeds=SEEDS)
    print()
    print(result.render())
    n_seeds = len(SEEDS)
    # Nine workload-points per (mode, link) cell per seed, all checked.
    assert all(row[2] == 3 * n_seeds for row in result.rows)
    by_mode = {}
    for row in result.rows:
        cell = by_mode.setdefault(row[0], {"crashes": 0, "pauses": 0,
                                           "resumes": 0, "link": 0})
        cell["crashes"] += row[4]
        cell["pauses"] += row[5]
        cell["resumes"] += row[6]
        cell["link"] += row[8]
    # At depth every planned fault must actually land, and every pause
    # must recover: these workloads are sized so the chaos window is
    # always inside the protocol's runtime.
    assert by_mode["crash"]["crashes"] == 3 * 3 * n_seeds
    assert by_mode["pause"]["pauses"] == 3 * 3 * n_seeds
    assert by_mode["pause"]["resumes"] == by_mode["pause"]["pauses"]
    assert by_mode["pause-crash"]["crashes"] == 3 * 3 * n_seeds
    assert by_mode["pause-crash"]["resumes"] == \
        by_mode["pause-crash"]["pauses"]
    # Link plans must perturb (the clean column is covered by equality
    # of its fault count with zero).
    for mode, cell in by_mode.items():
        assert cell["link"] > 0, f"mode {mode!r} never saw a link fault"
    # The directed scenarios rode along.
    assert result.data["directed"]["failstop"]["caught"]
    assert result.data["directed"]["recovery"]["resumes"] >= 1


def test_deep_chaos_grid_replays_bit_for_bit():
    """The whole multi-seed grid is one deterministic artifact: running
    it twice produces identical result fingerprints at every point."""
    specs = e14_plan(seeds=(7, 8, 9))
    first = execute_specs(specs)
    second = execute_specs(specs)
    assert set(first) == set(second)
    for label in first:
        assert result_fingerprint(first[label]) == \
            result_fingerprint(second[label]), label

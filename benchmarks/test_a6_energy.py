"""A6 (extension): the energy-delay view of speculation.

Claims demonstrated:
* where speculation removes stall time (streaming stores under SC), the
  energy-delay product improves dramatically -- the added work is tiny
  against the time recovered;
* on conflict-heavy code (false sharing), rolled-back work is pure
  energy waste and the EDP gets *worse*: the tradeoff is real and this
  model makes it measurable.
"""

from repro.harness.ablations import a6_energy


def test_a6_energy(run_once):
    result = run_once(a6_energy, n_cores=8, scale=1.0)
    print()
    print(result.render())

    def edp(name, label):
        run, report = result.data[(name, label)]
        return report.energy_delay_product(run.cycles)

    # Streaming: big EDP win.
    assert edp("streaming-writer", "if-sc") < 0.5 * edp("streaming-writer", "base-sc")
    # False sharing: measurable waste and an EDP loss.
    _, report = result.data[("false-sharing", "if-sc")]
    assert report.wasted > 0
    assert edp("false-sharing", "if-sc") > edp("false-sharing", "base-sc")

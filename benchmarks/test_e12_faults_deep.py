"""E12 deep fault injection: long sweeps under a hostile interconnect.

The tier-1 suite runs a seconds-long smoke subset (``tests/test_faults.py``
and the quick E12 in ``tests/test_fuzz.py``); this benchmark goes wide --
many random programs under every fault scenario, plus a deep fuzz sweep
with the storm plan on the fault-plan axis -- and must find *zero*
ordering violations: an unreliable network may change timing, never
order.  Every run executes under the liveness watchdog, so a protocol
hang fails fast with a diagnostic dump instead of wedging the suite.
"""

import pytest

from repro.faults import fault_scenarios
from repro.harness import e12_fault_injection
from repro.sim.config import ConsistencyModel
from repro.verification.fuzz import fuzz_sweep

pytestmark = [pytest.mark.slow, pytest.mark.fuzz]


def test_e12_table(run_once):
    result = run_once(e12_fault_injection, n_programs=12)
    print()
    print(result.render())
    assert all(row[2] == row[3] for row in result.rows)  # runs == passed
    by_scenario = {}
    for row in result.rows:
        by_scenario.setdefault(row[0], 0)
        by_scenario[row[0]] += row[6]
    assert by_scenario["none"] == 0
    # At depth every hostile scenario must actually exercise its fault.
    for name, injected in by_scenario.items():
        if name != "none":
            assert injected > 0, f"scenario {name!r} never injected a fault"
    # Drop scenarios must show recovery traffic, duplication suppression.
    assert sum(row[4] for row in result.rows if row[0] == "drop-retry") > 0
    assert sum(row[5] for row in result.rows if row[0] == "duplication") > 0


@pytest.mark.parametrize("scenario", ["duplication", "drop-retry", "storm"])
def test_deep_faulty_sweep_is_clean(scenario):
    plan = fault_scenarios(seed=31)[scenario]
    report = fuzz_sweep(n_programs=25, seed=2000, ops_per_thread=10,
                        skew_variants=2, stop_after=None,
                        fault_plans=[plan])
    assert report.cases_run == 25 * len(ConsistencyModel) * 3 * 2
    assert report.clean, report.failures[0].message

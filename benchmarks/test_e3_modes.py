"""E3: on-demand vs continuous speculation modes.

Paper claims reproduced:
* both modes work (correct results, comparable performance);
* on-demand speculates only when necessary -- far fewer episodes and
  fewer violations;
* continuous mode decouples consistency enforcement -- many more
  episodes, and strictly more exposure (violations + wasted work).
"""

from repro.harness import e3_modes


def test_e3_modes(run_once):
    result = run_once(e3_modes, n_cores=8, scale=1.0)
    print()
    print(result.render())

    by_mode = {"on-demand": {}, "continuous": {}}
    for (name, mode), run in result.data.items():
        by_mode[mode][name] = run

    total_cycles = {mode: sum(r.cycles for r in runs.values())
                    for mode, runs in by_mode.items()}
    # Comparable overall performance (within 35%).
    ratio = total_cycles["continuous"] / total_cycles["on-demand"]
    assert 0.8 < ratio < 1.35

    def episodes(run):
        return run.stats.sum(f"spec.{i}.episodes" for i in range(8))

    on_demand_eps = sum(episodes(r) for r in by_mode["on-demand"].values())
    continuous_eps = sum(episodes(r) for r in by_mode["continuous"].values())
    assert continuous_eps > 2 * on_demand_eps

    on_demand_viol = sum(r.violations() for r in by_mode["on-demand"].values())
    continuous_viol = sum(r.violations() for r in by_mode["continuous"].values())
    assert continuous_viol >= on_demand_viol

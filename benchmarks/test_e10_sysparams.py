"""E10 (Table-2-style): system parameters and simulator characterisation.

Regenerates the configuration table and sanity-checks that the default
machine matches what DESIGN.md documents.  Also benchmarks raw
simulator throughput (events/second) on a reference workload, so
performance regressions in the simulator itself are visible.
"""

import time

from repro.harness import e10_system_parameters
from repro.sim.config import SystemConfig
from repro.system import System
from repro.workloads import standard_suite


def test_e10_system_parameters(run_once):
    result = run_once(e10_system_parameters)
    print()
    print(result.render())

    config = result.data["config"]
    assert config.l1.size_bytes == 64 * 1024
    assert config.l1.n_blocks == 1024
    assert config.memory.dram_latency == 120
    rendered = result.render()
    assert "MESI" in rendered
    assert "crossbar" in rendered


def test_simulator_throughput(benchmark):
    """Events/second on the reference workload (regression canary)."""
    suite = standard_suite(8, scale=0.5)
    workload = suite["locks-ticket"]

    def run():
        system = System(SystemConfig(n_cores=8), workload.programs)
        system.run()
        return system.sim.events_dispatched

    events = benchmark.pedantic(run, rounds=3, iterations=1)
    assert events > 1000

"""E6 (storage table): ~1 KB of state, independent of speculation depth.

Paper claims reproduced:
* InvisiFence's per-core speculative-state storage is constant
  (SR/SW bits + checkpoint, well under ~1 KB for a 64 KB L1);
* per-store prior designs grow linearly and overtake it quickly;
* measured speculation episodes routinely exceed small per-store
  depths, so the constant-storage design matters in practice.
"""

from repro.baselines.per_store import PerStoreDesign, coverage_at_depth
from repro.harness import e6_storage


def test_e6_storage(run_once):
    result = run_once(e6_storage, n_cores=8, scale=1.0)
    print()
    print(result.render())

    invisi_bytes = result.data["invisifence_bytes"]
    # The headline: order-1 KB, constant.
    assert invisi_bytes <= 1024

    # Per-store designs scale linearly and cross InvisiFence's constant
    # cost by depth 64.
    assert PerStoreDesign(64).storage_bytes > invisi_bytes
    b64, b128, b256 = (PerStoreDesign(d).storage_bits for d in (64, 128, 256))
    assert b256 - b128 == 2 * (b128 - b64)  # linear in depth

    # Measured episodes: deep speculation actually happens -- a depth-8
    # per-store design cannot cover every episode the suite produces.
    episodes = result.data["episode_stores"]
    assert episodes.count > 0
    assert coverage_at_depth(episodes, 8) < 1.0

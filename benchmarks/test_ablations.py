"""Ablation benchmarks (A1-A5): the design choices DESIGN.md calls out.

These go beyond the paper's tables: each isolates one design decision
of the mechanism or the simulated substrate and shows its effect.
"""

from repro.harness import (
    a1_topology,
    a2_coalescing,
    a3_rollback_strategy,
    a4_store_prefetch,
    a5_sync_rich_workloads,
)


def test_a1_topology(run_once):
    result = run_once(a1_topology, n_cores=8, scale=0.6)
    print()
    print(result.render())
    # The SC-transparency result survives a real NoC: InvisiFence-SC
    # at-least-matches conventional SC on both fabrics...
    for (name, fabric), (base, invisi) in result.data.items():
        assert invisi.cycles <= base.cycles * 1.05, (name, fabric)
    # ...and the store-miss-bound workload shows a big win on BOTH.
    for fabric in ("crossbar", "mesh"):
        base, invisi = result.data[("streaming-writer", fabric)]
        assert base.cycles > invisi.cycles * 1.5, fabric


def test_a2_coalescing(run_once):
    result = run_once(a2_coalescing, n_cores=8, scale=0.6)
    print()
    print(result.render())

    def drained(name, coalescing):
        run = result.data[(name, coalescing)]
        return run.stats.sum(f"core.{i}.stores_drained" for i in range(8))

    # Repeat-address bursts collapse under coalescing...
    assert drained("repeat-stores", True) < drained("repeat-stores", False)
    assert (result.data[("repeat-stores", True)].cycles
            <= result.data[("repeat-stores", False)].cycles)
    # ...and workloads without same-address bursts are untouched.
    assert drained("producer-consumer", True) == drained("producer-consumer", False)


def test_a3_rollback_strategy(run_once):
    result = run_once(a3_rollback_strategy, n_cores=4)
    print()
    print(result.render())
    clean = result.data[("dirty-rewrite", "clean-before-write")]
    victim = result.data[("dirty-rewrite", "victim-buffer")]

    def clean_wbs(run):
        return run.stats.sum(f"l1.{i}.clean_before_write" for i in range(4))

    # The tradeoff: clean-before-write pays writeback traffic and never
    # aborts; the (undersized) victim buffer avoids the traffic but
    # overflows into violations.
    assert clean_wbs(clean) > 0
    assert clean.violations() == 0
    assert clean_wbs(victim) == 0
    assert victim.violations() > 0


def test_a4_store_prefetch(run_once):
    result = run_once(a4_store_prefetch, n_cores=8)
    print()
    print(result.render())
    base = {depth: pair[0].cycles for depth, pair in result.data.items()}
    # Overlapping store misses matters enormously on streaming code...
    assert base[0] > base[4] * 2
    # ...and saturates once a few misses are in flight.
    assert base[8] <= base[4] * 1.05


def test_a5_sync_rich_workloads(run_once):
    result = run_once(a5_sync_rich_workloads, n_cores=4)
    print()
    print(result.render())
    for name, (base_sc, base_rmo, if_sc) in result.data.items():
        # Transparency holds with zero (or near-zero) violations: the
        # CAS-dense workloads neither need nor suffer from speculation.
        assert if_sc.cycles <= base_sc.cycles * 1.05, name
        assert if_sc.cycles <= base_rmo.cycles * 1.05, name
